"""Static schedule proofs (offline redistribution verification).

A communication schedule is pure data, so its correctness properties can
be proved *before any bytes move* — the approach Rink et al. take for
memory-efficient array redistribution plans.  :func:`verify_schedule`
establishes, with vectorized whole-array evidence rather than sampling:

* **completeness** — every destination element is covered by exactly one
  transfer item (a flat coverage-count array over the global index
  space must be identically 1),
* **pairwise disjointness** — no element is moved twice (the same count
  array must never exceed 1, reported separately so an over-coverage
  bug is named as such),
* **ownership** — every item's region lies inside its source rank's and
  destination rank's owned patches (flat owner-map arrays built from
  :func:`~repro.util.indexing.region_flat_indices`),
* **conservation** — total elements and bytes sent equal total elements
  and bytes received, per rank and globally, and match the coalescing
  groups' precomputed offsets,
* **plan consistency** — every compiled :class:`~repro.schedule.
  indexplan.PairPlan`, *including its contiguous/strided slice fast
  paths*, selects exactly the elements the fallback gather
  (:meth:`~repro.schedule.indexplan.LocalIndexer.region_indices`) would,
  in the same wire order.

:func:`verify_against_oracle` additionally proves a fast-path schedule
routes every element through the same (src, dst) pair as the all-pairs
intersection oracle (:func:`~repro.schedule.builder.
build_allpairs_schedule`) — since ownership is a partition on both
sides, element routing is unique and any correct builder must agree
with it exactly.

All checks collect *every* violated property into one
:class:`~repro.errors.VerificationError` instead of stopping at the
first, so CI output names the full damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ScheduleError, VerificationError
from repro.dad.descriptor import DistArrayDescriptor
from repro.linearize.linearization import Linearization
from repro.schedule.builder import build_allpairs_schedule
from repro.schedule.indexplan import LocalIndexer, PairPlan
from repro.schedule.plan import CommSchedule, LinearSchedule
from repro.util.indexing import region_flat_indices, shape_volume

__all__ = [
    "ScheduleProof",
    "verify_schedule",
    "verify_against_oracle",
    "verify_collective_plan",
    "verify_delta_equivalence",
    "verify_linear_schedule",
    "verify_rank_plans",
]


@dataclass
class ScheduleProof:
    """Evidence record returned by a successful verification."""

    elements: int = 0
    items: int = 0
    pairs: int = 0
    fastpath_pairs: int = 0
    checks: list[str] = field(default_factory=list)

    def passed(self, name: str) -> None:
        self.checks.append(name)


def _owner_map(desc: DistArrayDescriptor) -> np.ndarray:
    """Flat array mapping every global element to its owning rank.

    Doubles as a proof that the descriptor itself is a partition: any
    element left unowned (or the template's own overlap checks having
    been bypassed) surfaces as a ``-1`` here.
    """
    total = shape_volume(desc.shape)
    owner = np.full(total, -1, dtype=np.int64)
    for rank in range(desc.nranks):
        for region in desc.local_regions(rank):
            owner[region_flat_indices(region, desc.shape)] = rank
    return owner


def _materialize(pp: PairPlan) -> np.ndarray:
    """The flat local indices a compiled pair plan addresses — fast
    paths expanded, so slice claims are checked element-for-element."""
    if pp.idx is None:
        return np.arange(pp.lo, pp.lo + pp.size * pp.step, pp.step,
                         dtype=np.int64)
    return np.asarray(pp.idx, dtype=np.int64)


def _check_rank_plans(schedule: CommSchedule, side: str, rank: int,
                      owned_regions, failures: list[str],
                      proof: ScheduleProof | None = None) -> None:
    """Prove one rank's compiled plan equals the fallback gather."""
    from repro.errors import ScheduleError
    try:
        if side == "send":
            groups = schedule.send_groups(rank)
            plan = schedule.send_plan(rank, owned_regions)
        else:
            groups = schedule.recv_groups(rank)
            plan = schedule.recv_plan(rank, owned_regions)
    except ScheduleError as exc:
        failures.append(
            f"{side} rank {rank}: plan compilation failed ({exc})")
        return
    if len(plan.pairs) != len(groups):
        failures.append(
            f"{side} rank {rank}: plan has {len(plan.pairs)} pairs for "
            f"{len(groups)} coalescing groups")
        return
    indexer = LocalIndexer(list(owned_regions))
    for pp, (peer, regions, offsets) in zip(plan.pairs, groups):
        label = f"{side} rank {rank} -> peer {peer}"
        if pp.peer != peer:
            failures.append(f"{label}: plan addresses peer {pp.peer}")
            continue
        if pp.size != int(offsets[-1]):
            failures.append(
                f"{label}: plan carries {pp.size} elements, groups "
                f"expect {int(offsets[-1])}")
            continue
        expect = (np.concatenate(
            [indexer.region_indices(r) for r in regions])
            if regions else np.empty(0, dtype=np.int64))
        got = _materialize(pp)
        if got.shape != expect.shape or not np.array_equal(got, expect):
            kind = ("contiguous" if pp.contiguous else
                    "strided" if pp.strided else "indexed")
            failures.append(
                f"{label}: {kind} plan selects different elements than "
                f"the fallback gather (wire order or coverage mismatch)")
        if proof is not None:
            proof.pairs += 1
            if pp.idx is None:
                proof.fastpath_pairs += 1


def verify_rank_plans(schedule: CommSchedule, side: str, rank: int,
                      owned_regions) -> None:
    """One rank's plan↔fallback-gather proof (the runtime-hook check).

    Raises :class:`~repro.errors.VerificationError` on any mismatch
    between a compiled pair plan — fast paths included — and the
    indices the fallback gather would use.
    """
    failures: list[str] = []
    _check_rank_plans(schedule, side, rank, owned_regions, failures)
    if failures:
        raise VerificationError(
            f"schedule {side} plan for rank {rank} failed verification",
            failures)


def verify_schedule(schedule: CommSchedule, src_desc: DistArrayDescriptor,
                    dst_desc: DistArrayDescriptor, *,
                    check_plans: bool = True) -> ScheduleProof:
    """Prove a region schedule correct for a (src, dst) descriptor pair.

    Returns a :class:`ScheduleProof` naming every property established;
    raises :class:`~repro.errors.VerificationError` listing *all*
    violated properties otherwise.
    """
    failures: list[str] = []
    proof = ScheduleProof(items=len(schedule.items))

    if src_desc.shape != dst_desc.shape:
        raise VerificationError(
            "descriptor shapes differ", [
                f"source shape {src_desc.shape} vs destination "
                f"shape {dst_desc.shape}"])
    shape = src_desc.shape
    total = shape_volume(shape)
    if schedule.src_nranks != src_desc.nranks:
        failures.append(
            f"schedule spans {schedule.src_nranks} source ranks, "
            f"descriptor has {src_desc.nranks}")
    if schedule.dst_nranks != dst_desc.nranks:
        failures.append(
            f"schedule spans {schedule.dst_nranks} destination ranks, "
            f"descriptor has {dst_desc.nranks}")

    src_owner = _owner_map(src_desc)
    dst_owner = _owner_map(dst_desc)
    counts = np.zeros(total, dtype=np.int64)
    bad_src = bad_dst = 0
    for it in schedule.items:
        idx = region_flat_indices(it.region, shape)
        np.add.at(counts, idx, 1)
        bad_src += int(np.count_nonzero(src_owner[idx] != it.src))
        bad_dst += int(np.count_nonzero(dst_owner[idx] != it.dst))
        proof.elements += it.region.volume

    if bad_src or bad_dst:
        failures.append(
            f"ownership: {bad_src} element(s) not owned by their item's "
            f"source rank, {bad_dst} not owned by the destination rank")
    else:
        proof.passed("ownership")

    over = np.flatnonzero(counts > 1)
    if over.size:
        coord = np.unravel_index(int(over[0]), shape)
        failures.append(
            f"disjointness: {over.size} element(s) transferred more than "
            f"once (first at {tuple(int(c) for c in coord)}, "
            f"{int(counts[over[0]])} times)")
    else:
        proof.passed("pairwise disjointness")
    missing = np.flatnonzero(counts == 0)
    if missing.size:
        coord = np.unravel_index(int(missing[0]), shape)
        failures.append(
            f"completeness: {missing.size} destination element(s) never "
            f"written (first at {tuple(int(c) for c in coord)})")
    elif not over.size:
        proof.passed("completeness (every element exactly once)")

    itemsize = np.dtype(src_desc.dtype).itemsize
    sent = sum(int(offs[-1]) for r in range(schedule.src_nranks)
               for _, _, offs in schedule.send_groups(r))
    recvd = sum(int(offs[-1]) for r in range(schedule.dst_nranks)
                for _, _, offs in schedule.recv_groups(r))
    if not (sent == recvd == schedule.element_count == total):
        failures.append(
            f"conservation: {sent} elements sent, {recvd} received, "
            f"{schedule.element_count} scheduled, {total} in the array")
    else:
        proof.passed(
            f"conservation ({sent} elements / {sent * itemsize} bytes "
            f"both directions)")

    if check_plans:
        for r in range(schedule.src_nranks):
            _check_rank_plans(schedule, "send", r,
                              src_desc.local_regions(r), failures, proof)
        for r in range(schedule.dst_nranks):
            _check_rank_plans(schedule, "recv", r,
                              dst_desc.local_regions(r), failures, proof)
        if not failures:
            proof.passed(
                f"plan consistency ({proof.pairs} pair plans, "
                f"{proof.fastpath_pairs} on slice fast paths)")

    if failures:
        raise VerificationError("schedule failed verification", failures)
    return proof


def verify_against_oracle(schedule: CommSchedule,
                          src_desc: DistArrayDescriptor,
                          dst_desc: DistArrayDescriptor) -> ScheduleProof:
    """Prove a schedule routes every element exactly as the all-pairs
    intersection oracle does.

    Ownership partitions both sides, so each element's (src, dst) pair
    is uniquely determined — any two correct schedules agree element-
    for-element.  This is the CI gate for the structured and sweep-line
    fast-path builders.
    """
    proof = verify_schedule(schedule, src_desc, dst_desc)
    oracle = build_allpairs_schedule(src_desc, dst_desc)
    shape = src_desc.shape
    total = shape_volume(shape)

    def routing(sched: CommSchedule) -> np.ndarray:
        route = np.full(total, -1, dtype=np.int64)
        for it in sched.items:
            idx = region_flat_indices(it.region, shape)
            route[idx] = it.src * sched.dst_nranks + it.dst
        return route

    diff = np.flatnonzero(routing(schedule) != routing(oracle))
    if diff.size:
        coord = np.unravel_index(int(diff[0]), shape)
        raise VerificationError(
            "schedule disagrees with the all-pairs oracle", [
                f"{diff.size} element(s) routed through a different "
                f"(src, dst) pair (first at "
                f"{tuple(int(c) for c in coord)})"])
    proof.passed(
        f"oracle agreement (routing identical over {total} elements)")
    return proof


def verify_collective_plan(schedule: CommSchedule,
                           src_desc: DistArrayDescriptor,
                           dst_desc: DistArrayDescriptor, *,
                           round_bytes: int | None = None) -> ScheduleProof:
    """Prove a collective round plan byte-conserving and complete.

    Builds the memory-bounded round decomposition the collective
    executors would use (:meth:`~repro.schedule.plan.CommSchedule.
    collective_plan` at the descriptor dtype and ``round_bytes`` /
    ``REPRO_ROUND_BYTES``) and establishes, on top of the full
    :func:`verify_against_oracle` proof of the underlying schedule:

    * **chunk tiling** — per (src, dst) pair, the plan's chunks tile the
      pair's wire-order element range ``[0, size)`` exactly once, in
      monotonically increasing rounds (so chunked streams reassemble in
      wire order without reordering buffers),
    * **byte conservation** — summed over all rounds, the plan moves
      exactly the schedule's elements: every byte of the p2p transfer,
      each exactly once, no more,
    * **memory bound** — every (round, rank) send and receive load is
      at most ``round_bytes`` (whenever one element fits a round), and
      the plan's advertised ``peak_send_bytes``/``peak_recv_bytes``
      and ``resident_ceiling()`` match the loads recomputed here from
      the raw chunks.
    """
    from repro.schedule.costmodel import resolve_round_bytes

    proof = verify_against_oracle(schedule, src_desc, dst_desc)
    itemsize = np.dtype(src_desc.dtype).itemsize
    round_bytes = resolve_round_bytes(round_bytes)
    coll = schedule.collective_plan(itemsize, round_bytes)
    failures: list[str] = []

    # chunk tiling: per pair, chunks cover [0, size) exactly once and
    # round order is monotone in wire order.
    pair_sizes: dict[tuple[int, int], int] = {}
    for src in range(schedule.src_nranks):
        for dst, _items, offsets in schedule.send_groups(src):
            pair_sizes[(src, dst)] = int(offsets[-1])
    chunks_of: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
    for rnd, chunks in enumerate(coll.rounds):
        for c in chunks:
            if c.hi <= c.lo:
                failures.append(
                    f"pair ({c.src}, {c.dst}): empty/inverted chunk "
                    f"[{c.lo}, {c.hi}) in round {rnd}")
            chunks_of.setdefault((c.src, c.dst), []).append(
                (c.lo, c.hi, rnd))
    if set(chunks_of) != set(pair_sizes):
        ghost = sorted(set(chunks_of) - set(pair_sizes))
        lost = sorted(set(pair_sizes) - set(chunks_of))
        failures.append(
            f"pair coverage: {len(ghost)} chunked pair(s) not in the "
            f"schedule {ghost[:3]}, {len(lost)} schedule pair(s) never "
            f"chunked {lost[:3]}")
    tiled = 0
    for key, size in pair_sizes.items():
        spans = sorted(chunks_of.get(key, []))
        pos, rnd_prev, ok = 0, -1, True
        for lo, hi, rnd in spans:
            if lo != pos or rnd <= rnd_prev:
                ok = False
                break
            pos, rnd_prev = hi, rnd
        if not (ok and pos == size):
            failures.append(
                f"pair {key}: chunks {[(lo, hi) for lo, hi, _ in spans]} "
                f"do not tile [0, {size}) in monotone round order")
        else:
            tiled += 1
    if tiled == len(pair_sizes) and set(chunks_of) == set(pair_sizes):
        proof.passed(
            f"chunk tiling ({coll.chunk_count} chunks over "
            f"{len(pair_sizes)} pairs, {coll.nrounds} rounds)")

    # byte conservation across rounds.
    moved = coll.element_count
    if moved != schedule.element_count:
        failures.append(
            f"conservation: rounds move {moved} elements, schedule "
            f"has {schedule.element_count}")
    else:
        proof.passed(
            f"round byte conservation ({moved * itemsize} bytes)")

    # memory bound: recompute per-(round, rank) loads from raw chunks
    # and check both the cap and the plan's advertised peaks.
    cap_elems = max(1, round_bytes // itemsize)
    peak_send = peak_recv = 0
    for rnd, chunks in enumerate(coll.rounds):
        send: dict[int, int] = {}
        recv: dict[int, int] = {}
        for c in chunks:
            send[c.src] = send.get(c.src, 0) + c.size
            recv[c.dst] = recv.get(c.dst, 0) + c.size
        for rank, n in send.items():
            peak_send = max(peak_send, n * itemsize)
            if n > cap_elems:
                failures.append(
                    f"round {rnd}: source rank {rank} sends {n} elements,"
                    f" cap is {cap_elems}")
        for rank, n in recv.items():
            peak_recv = max(peak_recv, n * itemsize)
            if n > cap_elems:
                failures.append(
                    f"round {rnd}: dest rank {rank} receives {n} "
                    f"elements, cap is {cap_elems}")
        for rank, n in send.items():
            if coll.send_bytes(rnd, rank) != n * itemsize:
                failures.append(
                    f"round {rnd}: plan books {coll.send_bytes(rnd, rank)}"
                    f" send bytes for rank {rank}, chunks hold "
                    f"{n * itemsize}")
    if (peak_send, peak_recv) != (coll.peak_send_bytes,
                                  coll.peak_recv_bytes):
        failures.append(
            f"advertised peaks ({coll.peak_send_bytes}, "
            f"{coll.peak_recv_bytes}) differ from recomputed "
            f"({peak_send}, {peak_recv})")
    if not failures:
        proof.passed(
            f"memory bound (peak {peak_send}B send / {peak_recv}B recv "
            f"per rank-round <= {round_bytes}B cap; resident ceiling "
            f"{coll.resident_ceiling()}B)")

    if failures:
        raise VerificationError(
            "collective round plan failed verification", failures)
    return proof


def verify_delta_equivalence(old_desc: DistArrayDescriptor,
                             new_desc: DistArrayDescriptor, *,
                             delta=None) -> ScheduleProof:
    """Prove a resize delta equivalent to — and minimal against — the
    full rebuild: *delta schedule ∘ old ownership ≡ full rebuild*.

    On top of the full old→new schedule's own oracle proof
    (:func:`verify_against_oracle`), establishes:

    * **partition** — the delta's migration items plus its kept items
      are exactly the full schedule's items, each exactly once, so
      replaying the migration over the wire while kept elements stay
      home writes precisely what a full rebuild would write,
    * **minimality** — an element rides the migration schedule if and
      only if its owner actually changed (``old_owner != new_owner``
      under the two descriptors' owner maps), so the delta moves
      strictly fewer bytes than the full rebuild whenever any element
      stays put — and never one byte more,
    * **identity ranks** — every rank the delta classifies as
      unchanged has a bit-identical ownership fingerprint on both
      sides and appears in no migration item (its buffer may be kept
      in place untouched),
    * **local repack consistency** — per rank, the compiled kept-bytes
      (gather, scatter) plans address exactly the indices the fallback
      region gather would, over the old and new patch layouts
      respectively (slice fast paths expanded, like every plan check
      here).

    Returns the combined :class:`ScheduleProof`; raises
    :class:`~repro.errors.VerificationError` listing every violated
    property otherwise.
    """
    from repro.schedule.builder import build_region_schedule
    from repro.schedule.delta import compile_delta

    full = build_region_schedule(old_desc, new_desc)
    if delta is None:
        delta = compile_delta(old_desc, new_desc, full=full)
    proof = verify_against_oracle(full, old_desc, new_desc)
    failures: list[str] = []
    shape = old_desc.shape
    total = shape_volume(shape)

    # partition: migration ∪ kept == full, disjoint.
    migration_items = set(delta.migration.items)
    kept_items = set(delta.kept_items)
    overlap = migration_items & kept_items
    union = migration_items | kept_items
    full_items = set(full.items)
    if overlap:
        failures.append(
            f"partition: {len(overlap)} item(s) both migrated and kept")
    if union != full_items:
        extra = len(union - full_items)
        missing = len(full_items - union)
        failures.append(
            f"partition: delta items differ from the full rebuild "
            f"({extra} extra, {missing} missing)")
    if not overlap and union == full_items:
        proof.passed(
            f"partition (migration {len(migration_items)} + kept "
            f"{len(kept_items)} items = full {len(full_items)})")

    # minimality: moved elements are exactly the changed-owner set.
    old_owner = _owner_map(old_desc)
    new_owner = _owner_map(new_desc)
    changed = old_owner != new_owner
    moved_mask = np.zeros(total, dtype=bool)
    bad_route = 0
    for it in delta.migration.items:
        idx = region_flat_indices(it.region, shape)
        moved_mask[idx] = True
        bad_route += int(np.count_nonzero(
            (old_owner[idx] != it.src) | (new_owner[idx] != it.dst)))
        if it.src == it.dst:
            failures.append(
                f"minimality: migration item {it} moves rank "
                f"{it.src}'s data to itself")
    for it in delta.kept_items:
        idx = region_flat_indices(it.region, shape)
        bad_route += int(np.count_nonzero(
            (old_owner[idx] != it.src) | (new_owner[idx] != it.dst)))
        if it.src != it.dst:
            failures.append(
                f"minimality: kept item {it} actually changes owner")
    if bad_route:
        failures.append(
            f"routing: {bad_route} element(s) of the delta disagree with "
            f"the descriptors' owner maps")
    spurious = int(np.count_nonzero(moved_mask & ~changed))
    unmoved = int(np.count_nonzero(changed & ~moved_mask))
    if spurious or unmoved:
        failures.append(
            f"minimality: {spurious} element(s) migrated without an "
            f"owner change, {unmoved} changed owner but never migrated")
    n_changed = int(np.count_nonzero(changed))
    if not (spurious or unmoved or bad_route):
        proof.passed(
            f"minimality (migrates exactly the {n_changed} changed-owner "
            f"elements of {total}; {total - n_changed} stay home)")
    if delta.moved_elements + delta.kept_elements != total:
        failures.append(
            f"accounting: moved {delta.moved_elements} + kept "
            f"{delta.kept_elements} != {total} total elements")

    # identity ranks: fingerprint-identical and untouched by migration.
    touched: set[int] = set()
    for it in delta.migration.items:
        touched.add(it.src)
        touched.add(it.dst)
    id_ok = True
    for r in sorted(delta.identity_ranks):
        if old_desc.ownership_key(r) != new_desc.ownership_key(r):
            failures.append(
                f"identity rank {r}: ownership fingerprints differ")
            id_ok = False
        if r in touched:
            failures.append(
                f"identity rank {r}: appears in a migration item")
            id_ok = False
    if id_ok:
        proof.passed(
            f"identity ranks ({len(delta.identity_ranks)} keep their "
            f"buffer in place)")

    # local repack plans vs the fallback gather on both layouts.
    plan_pairs = 0
    for rank, regions in sorted(delta.kept_by_rank.items()):
        try:
            plans = delta.local_plan(rank)
        except ScheduleError as exc:
            # A misclassified item references data the rank never owns
            # on one side; surface it as a failed property, not a crash.
            failures.append(
                f"local repack rank {rank}: plan compilation failed "
                f"({exc})")
            continue
        if plans is None:
            continue
        gather, scatter = plans
        old_ix = LocalIndexer(list(old_desc.local_regions(rank)))
        new_ix = LocalIndexer(list(new_desc.local_regions(rank)))
        for pp, indexer, side in ((gather, old_ix, "gather"),
                                  (scatter, new_ix, "scatter")):
            expect = (np.concatenate(
                [indexer.region_indices(r) for r in regions])
                if regions else np.empty(0, dtype=np.int64))
            got = _materialize(pp)
            if got.shape != expect.shape or not np.array_equal(got, expect):
                failures.append(
                    f"local repack rank {rank}: {side} plan selects "
                    f"different elements than the fallback gather")
            else:
                plan_pairs += 1
    if not any(f.startswith("local repack") for f in failures):
        proof.passed(
            f"local repack plan consistency ({plan_pairs} plans)")

    if failures:
        raise VerificationError(
            "delta schedule failed equivalence verification", failures)
    return proof


def verify_linear_schedule(schedule: LinearSchedule, src_lin: Linearization,
                           dst_lin: Linearization) -> ScheduleProof:
    """Prove a linearization schedule: completeness/disjointness over
    the destination linear space, run ownership on both sides, and run
    conservation against the coalescing groups."""
    failures: list[str] = []
    proof = ScheduleProof(items=len(schedule.items))
    if src_lin.total != dst_lin.total:
        raise VerificationError("linear spaces differ", [
            f"source total {src_lin.total} vs destination total "
            f"{dst_lin.total}"])
    total = dst_lin.total

    def owner_runs(lin: Linearization, nranks: int) -> np.ndarray:
        owner = np.full(total, -1, dtype=np.int64)
        for rank in range(nranks):
            for run in lin.runs(rank):
                owner[run.lo:run.hi] = rank
        return owner

    src_owner = owner_runs(src_lin, schedule.src_nranks)
    dst_owner = owner_runs(dst_lin, schedule.dst_nranks)
    marks = np.zeros(total, dtype=np.int64)
    bad_src = bad_dst = 0
    for it in schedule.items:
        marks[it.run.lo:it.run.hi] += 1
        sl = slice(it.run.lo, it.run.hi)
        bad_src += int(np.count_nonzero(src_owner[sl] != it.src))
        bad_dst += int(np.count_nonzero(dst_owner[sl] != it.dst))
        proof.elements += it.run.length
    if bad_src or bad_dst:
        failures.append(
            f"ownership: {bad_src} position(s) outside the source rank's "
            f"runs, {bad_dst} outside the destination rank's")
    else:
        proof.passed("run ownership")
    if int(marks.max(initial=0)) > 1:
        failures.append(
            f"disjointness: {int(np.count_nonzero(marks > 1))} linear "
            f"position(s) transferred more than once")
    else:
        proof.passed("pairwise disjointness")
    if int(marks.min(initial=1)) < 1:
        failures.append(
            f"completeness: {int(np.count_nonzero(marks == 0))} linear "
            f"position(s) never written")
    elif int(marks.max(initial=0)) == 1:
        proof.passed("completeness (every position exactly once)")
    sent = sum(int(offs[-1]) for r in range(schedule.src_nranks)
               for _, _, offs in schedule.send_groups(r))
    if sent != total:
        failures.append(
            f"conservation: groups pack {sent} elements, space holds "
            f"{total}")
    else:
        proof.passed(f"conservation ({sent} elements)")
    if failures:
        raise VerificationError(
            "linear schedule failed verification", failures)
    return proof
