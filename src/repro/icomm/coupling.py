"""InterComm import/export endpoints.

"Programs only express potential data transfers with import and export
calls, thereby freeing each program (component) developer from having to
know in advance the communication patterns of its potential partners."

The exporter buffers a bounded history of stamped snapshots and services
import requests whenever it makes progress (each ``export`` call, and at
``finalize``); the importer blocks until its request is matched under
the coordination rule.  Control traffic is rank-0-to-rank-0; the data
itself moves fully in parallel over the precomputed per-field schedule —
"separation of control issues from data transfers".
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


from repro.errors import CoordinationError
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.icomm.coordination import CoordinationSpec
from repro.schedule.builder import build_region_schedule
from repro.schedule.executor import execute_inter
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator

REQUEST_TAG = 140
HEADER_TAG = 141
DATA_TAG_BASE = 7000


def _field_tag(field: str) -> int:
    return DATA_TAG_BASE + (zlib.crc32(field.encode()) % 512)


@dataclass
class _FieldChannel:
    src_desc: DistArrayDescriptor
    dst_desc: DistArrayDescriptor
    schedule: object
    tag: int


def _build_channels(fields: dict[str, tuple[DistArrayDescriptor,
                                            DistArrayDescriptor]]):
    channels = {}
    for name, (src, dst) in fields.items():
        channels[name] = _FieldChannel(
            src, dst, build_region_schedule(src, dst), _field_tag(name))
    return channels


class Exporter:
    """The producing program's endpoint."""

    def __init__(self, local_comm: Communicator, inter: Intercommunicator,
                 spec: CoordinationSpec,
                 fields: dict[str, tuple[DistArrayDescriptor,
                                         DistArrayDescriptor]],
                 *, total_imports: int | None = None):
        self.local_comm = local_comm
        self.inter = inter
        self.spec = spec
        self.channels = _build_channels(fields)
        #: buffered snapshots: field -> list of (ts, DistributedArray)
        self._buffer: dict[str, list[tuple[int, DistributedArray]]] = {
            name: [] for name in fields}
        self._latest: dict[str, int | None] = {n: None for n in fields}
        #: requests received but not yet satisfiable: (field, import_ts)
        self._pending: list[tuple[str, int]] = []
        self._serviced = 0
        #: if set, finalize() blocks until this many imports were served
        self._total_imports = total_imports
        self.transfers = 0

    # -- the export call ---------------------------------------------------

    def export(self, field: str, ts: int, darray: DistributedArray) -> None:
        """Offer a stamped snapshot of ``field``; collective over the
        exporting cohort.  Never blocks on the importer."""
        channel = self._channel(field)
        rule = self.spec.rule(field)
        if rule.eligible(ts):
            snapshot = DistributedArray(
                channel.src_desc, self.local_comm.rank,
                {region: arr.copy() for region, arr in darray.patches.items()})
            buf = self._buffer[field]
            buf.append((ts, snapshot))
            if len(buf) > self.spec.history:
                buf.pop(0)
        self._latest[field] = ts
        self._service(stream_done=False)

    def finalize(self) -> None:
        """Declare the export stream finished and service whatever
        imports remain (blocking until ``total_imports`` when set)."""
        self._service(stream_done=True)
        if self._total_imports is not None:
            while self._serviced < self._total_imports:
                self._service(stream_done=True, block=True)

    # -- matching machinery ---------------------------------------------------

    def _channel(self, field: str) -> _FieldChannel:
        try:
            return self.channels[field]
        except KeyError:
            raise CoordinationError(
                f"exporter has no channel for field {field!r}") from None

    def _drain_requests(self, block: bool) -> None:
        """Pull newly arrived import requests (rank 0) and replicate the
        pending list across the cohort."""
        if self.local_comm.rank == 0:
            new = []
            if block and not self._pending:
                new.append(tuple(self.inter.recv(tag=REQUEST_TAG)))
            while self.inter.iprobe(tag=REQUEST_TAG) is not None:
                new.append(tuple(self.inter.recv(tag=REQUEST_TAG)))
        else:
            new = None
        new = self.local_comm.bcast(new, root=0)
        self._pending.extend(new)

    def _service(self, *, stream_done: bool, block: bool = False) -> None:
        self._drain_requests(block)
        still_pending: list[tuple[str, int]] = []
        for field, import_ts in self._pending:
            channel = self._channel(field)
            rule = self.spec.rule(field)
            buffered_ts = [ts for ts, _ in self._buffer[field]]
            try:
                chosen = rule.resolve(import_ts, buffered_ts,
                                      self._latest[field], stream_done)
            except CoordinationError as exc:
                if self.local_comm.rank == 0:
                    self.inter.send(("error", field, import_ts, str(exc)),
                                    dest=0, tag=HEADER_TAG)
                self._serviced += 1
                continue
            if chosen is None:
                still_pending.append((field, import_ts))
                continue
            snapshot = next(s for ts, s in self._buffer[field]
                            if ts == chosen)
            if self.local_comm.rank == 0:
                self.inter.send(("ok", field, import_ts, chosen),
                                dest=0, tag=HEADER_TAG)
            execute_inter(channel.schedule, self.inter, "src", snapshot,
                          tag=channel.tag)
            self.transfers += 1
            self._serviced += 1
        self._pending = still_pending


class Importer:
    """The consuming program's endpoint."""

    def __init__(self, local_comm: Communicator, inter: Intercommunicator,
                 spec: CoordinationSpec,
                 fields: dict[str, tuple[DistArrayDescriptor,
                                         DistArrayDescriptor]]):
        self.local_comm = local_comm
        self.inter = inter
        self.spec = spec
        self.channels = _build_channels(fields)
        self.transfers = 0

    def import_(self, field: str, ts: int,
                darray: DistributedArray) -> int:
        """Request ``field`` for timestamp ``ts``; blocks until the
        coordination rule matches an export.  Fills ``darray`` and
        returns the matched export timestamp."""
        try:
            channel = self.channels[field]
        except KeyError:
            raise CoordinationError(
                f"importer has no channel for field {field!r}") from None
        self.spec.rule(field)  # validate the rule exists on this side too
        if self.local_comm.rank == 0:
            self.inter.send((field, ts), dest=0, tag=REQUEST_TAG)
            header = self.inter.recv(source=0, tag=HEADER_TAG)
        else:
            header = None
        header = self.local_comm.bcast(header, root=0)
        status, h_field, h_ts, payload = header
        if status == "error":
            raise CoordinationError(payload)
        if (h_field, h_ts) != (field, ts):
            raise CoordinationError(
                f"out-of-order header: expected ({field}, {ts}), got "
                f"({h_field}, {h_ts})")
        execute_inter(channel.schedule, self.inter, "dst", darray,
                      tag=channel.tag)
        self.transfers += 1
        return payload
