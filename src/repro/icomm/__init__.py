"""InterComm (paper §4.4) — coupling framework with timestamp control.

Two distinguishing features of InterComm are modelled:

* **descriptor storage classes** — block distributions have small
  descriptors "replicated on each of the processes", while explicit
  (element-level) distributions have one entry per element and "must be
  partitioned across the participating processes"
  (:mod:`repro.icomm.descriptors`);
* **decoupled transfer control** — "programs only express potential
  data transfers with import and export calls"; a third-party
  *coordination specification* matches them by timestamp "via various
  types of matching criteria" (:mod:`repro.icomm.coordination`,
  :mod:`repro.icomm.coupling`).
"""

from repro.icomm.descriptors import ICBlockDescriptor, ICExplicitDescriptor
from repro.icomm.coordination import CoordinationSpec, MatchRule, Matching
from repro.icomm.coupling import Exporter, Importer

__all__ = [
    "ICBlockDescriptor",
    "ICExplicitDescriptor",
    "CoordinationSpec",
    "MatchRule",
    "Matching",
    "Exporter",
    "Importer",
]
