"""Timestamp matching criteria for InterComm-style coordination.

"The actual data transfers take place based on coordination rules
determined by a third party responsible for orchestrating the entire
coupled simulation ...  The key idea for the coordination specification
is the use of timestamps to determine when a data transfer will occur,
via various types of matching criteria."

A :class:`CoordinationSpec` is plain data built by that third party and
given to both programs; neither needs "to know in advance the
communication patterns of its potential partners".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CoordinationError


class Matching(enum.Enum):
    """How an import timestamp selects among export timestamps."""

    #: Import at t consumes the export stamped exactly t.
    EXACT = "exact"
    #: Import at t consumes the greatest export timestamp <= t.
    GREATEST_LOWER_BOUND = "glb"
    #: Only exports at multiples of ``interval`` are eligible; import at
    #: t consumes the export at floor(t / interval) * interval.
    REGULAR = "regular"


@dataclass(frozen=True)
class MatchRule:
    """Coordination rule for one field."""

    field: str
    matching: Matching = Matching.EXACT
    interval: int = 1

    def __post_init__(self) -> None:
        if self.matching is Matching.REGULAR and self.interval < 1:
            raise CoordinationError(
                f"REGULAR matching needs interval >= 1, got {self.interval}")

    # -- matching logic ----------------------------------------------------

    def eligible(self, export_ts: int) -> bool:
        """Is an export at this timestamp a candidate at all?"""
        if self.matching is Matching.REGULAR:
            return export_ts % self.interval == 0
        return True

    def resolve(self, import_ts: int, buffered: list[int],
                latest_export: int | None,
                stream_done: bool) -> int | None:
        """Decide which buffered export timestamp satisfies an import.

        Returns the chosen export timestamp, ``None`` when the decision
        must wait for future exports, and raises
        :class:`CoordinationError` when no export can ever match.
        """
        candidates = sorted(ts for ts in buffered if self.eligible(ts))
        if self.matching is Matching.EXACT:
            if import_ts in candidates:
                return import_ts
            if (latest_export is not None and latest_export >= import_ts) \
                    or stream_done:
                raise CoordinationError(
                    f"field {self.field!r}: no export at timestamp "
                    f"{import_ts} (EXACT matching)")
            return None
        if self.matching is Matching.REGULAR:
            target = (import_ts // self.interval) * self.interval
            if target in candidates:
                return target
            if (latest_export is not None and latest_export >= target
                    and target not in candidates) or stream_done:
                raise CoordinationError(
                    f"field {self.field!r}: export at timestamp {target} "
                    f"(REGULAR/{self.interval} for import {import_ts}) "
                    f"was never produced or already evicted")
            return None
        # GREATEST_LOWER_BOUND: safe to answer once an export beyond the
        # import timestamp exists (the GLB can no longer change), or at
        # stream end.
        lower = [ts for ts in candidates if ts <= import_ts]
        if lower and ((latest_export is not None
                       and latest_export > import_ts) or stream_done):
            return lower[-1]
        if stream_done:
            raise CoordinationError(
                f"field {self.field!r}: no export <= timestamp "
                f"{import_ts} (GLB matching)")
        return None


class CoordinationSpec:
    """The third party's rule book: one rule per coupled field."""

    def __init__(self, rules: list[MatchRule] | None = None,
                 *, history: int = 32):
        if history < 1:
            raise CoordinationError("history must be >= 1")
        self._rules: dict[str, MatchRule] = {}
        #: How many past exports each side buffers per field.
        self.history = history
        for rule in rules or []:
            self.add(rule)

    def add(self, rule: MatchRule) -> None:
        if rule.field in self._rules:
            raise CoordinationError(
                f"field {rule.field!r} already has a rule")
        self._rules[rule.field] = rule

    def rule(self, field: str) -> MatchRule:
        try:
            return self._rules[field]
        except KeyError:
            raise CoordinationError(
                f"no coordination rule for field {field!r}") from None

    def fields(self) -> list[str]:
        return sorted(self._rules)
