"""InterComm array descriptors: replicated blocks vs. partitioned explicit.

"In InterComm array distributions are classified into two types: those
in which entire blocks of an array are assigned to processes, block
distributions, and those in which individual elements are assigned
independently to a particular process, irregular or explicit
distributions.  For block distributions, the data structure required to
describe the distribution is relatively small, so can be replicated on
each of the processes ...  For explicit distributions ... the
descriptor itself is rather large and must be partitioned across the
participating processes."

Experiment E14 regenerates that storage asymmetry from these classes'
``per_rank_entries`` accounting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DistributionError
from repro.dad.axis import Implicit
from repro.dad.descriptor import DistArrayDescriptor
from repro.dad.template import CartesianTemplate, ExplicitTemplate, Template
from repro.util.regions import Region


class ICBlockDescriptor:
    """Block-style distribution: whole rectangular regions per process.

    The region list is small (independent of element count), so the
    full descriptor is replicated on every rank.
    """

    storage = "replicated"

    def __init__(self, shape: Sequence[int],
                 patches: Sequence[tuple[int, Region]],
                 nranks: int | None = None):
        self.template: Template = ExplicitTemplate(shape, patches, nranks)
        self._patch_count = len(list(patches))

    @classmethod
    def from_template(cls, template: Template) -> "ICBlockDescriptor":
        return cls(template.shape, template.all_owner_regions(),
                   template.nranks)

    @property
    def nranks(self) -> int:
        return self.template.nranks

    def descriptor(self, dtype=np.float64) -> DistArrayDescriptor:
        return DistArrayDescriptor(self.template, dtype)

    def per_rank_entries(self, rank: int) -> int:
        """Replicated: every rank stores every patch record."""
        ndim = self.template.ndim
        return self._patch_count * (2 * ndim + 1)


class ICExplicitDescriptor:
    """Element-level (irregular) distribution of a 1-D index space.

    One descriptor entry per element; each rank stores only the entries
    for its own elements (partitioned storage).
    """

    storage = "partitioned"

    def __init__(self, owners: Sequence[int], nranks: int | None = None):
        owners_arr = np.asarray(owners, dtype=np.int64)
        axis = Implicit(owners_arr, nprocs=nranks)
        self.template: Template = CartesianTemplate([axis])
        self.owners = owners_arr

    @property
    def nranks(self) -> int:
        return self.template.nranks

    def descriptor(self, dtype=np.float64) -> DistArrayDescriptor:
        return DistArrayDescriptor(self.template, dtype)

    def per_rank_entries(self, rank: int) -> int:
        """Partitioned: a rank stores one global-index entry per element
        it owns."""
        if not (0 <= rank < self.nranks):
            raise DistributionError(
                f"rank {rank} out of range for {self.nranks} ranks")
        return int(np.count_nonzero(self.owners == rank))
