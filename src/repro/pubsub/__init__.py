"""Publish/subscribe M×N coupling — the XChangemxn model (paper §5).

"XChangemxn is a middleware infrastructure for coupling components in
distributed applications.  XChangemxn uses the publish/subscribe
paradigm to link interacting components, and deal[s] specifically with
dynamic behaviors, such as dynamic arrivals and departures of
components and the transformation of data 'in-flight' to match end
point requirements."

The model implemented here:

* a :class:`SubscriptionBoard` (the registry service) records live
  subscriptions; publishers poll it, so subscribers can **arrive and
  depart between any two publishes** without the publisher's
  cooperation being coded in advance;
* each subscription carries the subscriber's desired layout *and an
  optional in-flight filter* (any :class:`repro.pipeline.Filter`): the
  publisher redistributes AND transforms per subscriber — "to match end
  point requirements";
* departure is graceful: the publisher closes the channel with a final
  control message, so a departing subscriber never blocks.
"""

from repro.pubsub.board import Subscription, SubscriptionBoard
from repro.pubsub.endpoints import Publisher, Subscriber

__all__ = [
    "SubscriptionBoard",
    "Subscription",
    "Publisher",
    "Subscriber",
]
