"""The subscription registry ("the XChange registry service").

Thread-safe shared state between publisher and subscriber jobs: who is
subscribed to which topic, with what layout and in-flight filter.  The
board carries only *control* information — data still flows directly
between the coupled programs over intercommunicators.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field as dc_field
from typing import Optional

from repro.errors import ConnectionError_
from repro.dad.descriptor import DistArrayDescriptor
from repro.pipeline.filters import Filter


@dataclass
class Subscription:
    """One subscriber's standing request on a topic."""

    topic: str
    sub_id: int
    layout: DistArrayDescriptor
    #: Optional elementwise transformation applied in flight.
    transform: Optional[Filter] = None
    #: Service name the data channel rendezvouses on.
    service: str = dc_field(default="")

    def __post_init__(self) -> None:
        if not self.service:
            self.service = f"pubsub/{self.topic}/{self.sub_id}"


class SubscriptionBoard:
    """Registry of live subscriptions, polled by publishers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = itertools.count(1)
        #: topic -> {sub_id: Subscription}
        self._subs: dict[str, dict[int, Subscription]] = {}
        #: (topic, sub_id) pairs flagged for departure
        self._leaving: set[tuple[str, int]] = set()

    # -- subscriber side -------------------------------------------------

    def subscribe(self, topic: str, layout: DistArrayDescriptor,
                  transform: Filter | None = None) -> Subscription:
        with self._lock:
            sub = Subscription(topic, next(self._next_id), layout,
                               transform)
            self._subs.setdefault(topic, {})[sub.sub_id] = sub
            return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Flag the subscription for graceful departure; the publisher
        completes the handshake at its next publish."""
        with self._lock:
            if sub.sub_id not in self._subs.get(sub.topic, {}):
                raise ConnectionError_(
                    f"subscription {sub.sub_id} on {sub.topic!r} unknown")
            self._leaving.add((sub.topic, sub.sub_id))

    # -- publisher side -----------------------------------------------------

    def active(self, topic: str) -> list[Subscription]:
        """Current subscriptions, including ones flagged as leaving (the
        publisher must still close them)."""
        with self._lock:
            return list(self._subs.get(topic, {}).values())

    def is_leaving(self, sub: Subscription) -> bool:
        with self._lock:
            return (sub.topic, sub.sub_id) in self._leaving

    def remove(self, sub: Subscription) -> None:
        """Publisher-side cleanup after closing a departed channel."""
        with self._lock:
            self._subs.get(sub.topic, {}).pop(sub.sub_id, None)
            self._leaving.discard((sub.topic, sub.sub_id))
