"""Publisher and Subscriber endpoints (XChangemxn model).

Channel lifecycle: a subscriber registers on the board and blocks in
``accept`` on its private service name; the publisher polls the board
at each ``publish``, connects to newcomers, redistributes (and
transforms, per subscription) the topic data to every live channel, and
closes channels whose subscribers flagged departure.  Data still moves
as schedule point-to-point messages — the board carries control only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConnectionError_
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.pubsub.board import Subscription, SubscriptionBoard
from repro.schedule.builder import build_region_schedule
from repro.schedule.executor import execute_inter
from repro.simmpi import payload as _payload
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator, NameService

HELLO_TAG = 190
CTRL_TAG = 191
DATA_TAG = 192


@dataclass
class _Channel:
    sub: Subscription
    inter: Intercommunicator
    schedule: object


class Publisher:
    """The producing side of one topic."""

    def __init__(self, comm: Communicator, ns: NameService,
                 board: SubscriptionBoard, topic: str,
                 src_descriptor: DistArrayDescriptor):
        self.comm = comm
        self.ns = ns
        self.board = board
        self.topic = topic
        self.src_descriptor = src_descriptor
        self._channels: dict[int, _Channel] = {}
        self.publishes = 0

    # -- board synchronization --------------------------------------------

    def _poll_board(self) -> tuple[list[Subscription], list[int]]:
        """Rank 0 reads the board; everyone gets the same decisions."""
        if self.comm.rank == 0:
            active = self.board.active(self.topic)
            new = [s for s in active if s.sub_id not in self._channels]
            leaving = [s.sub_id for s in active
                       if s.sub_id in self._channels
                       and self.board.is_leaving(s)]
            decision = (sorted(new, key=lambda s: s.sub_id),
                        sorted(leaving))
        else:
            decision = None
        got = self.comm.bcast(
            _payload.Raw(decision) if decision is not None else None,
            root=0)
        return got.value if isinstance(got, _payload.Raw) else got

    def _open_channel(self, sub: Subscription) -> None:
        inter = self.ns.connect(sub.service, self.comm)
        if self.comm.rank == 0:
            inter.send(self.src_descriptor, dest=0, tag=HELLO_TAG)
        schedule = build_region_schedule(self.src_descriptor, sub.layout)
        self._channels[sub.sub_id] = _Channel(sub, inter, schedule)

    def _close_channel(self, sub_id: int) -> None:
        channel = self._channels.pop(sub_id)
        if self.comm.rank == 0:
            for r in range(channel.inter.remote_size):
                channel.inter.send("bye", dest=r, tag=CTRL_TAG)
            self.board.remove(channel.sub)

    # -- publishing -------------------------------------------------------------

    def publish(self, darray: DistributedArray) -> int:
        """Push one snapshot to every live subscriber; collective over
        the publishing cohort.  Returns the number of channels served."""
        new, leaving = self._poll_board()
        for sub in new:
            self._open_channel(sub)
        for sub_id in leaving:
            self._close_channel(sub_id)

        served = 0
        for sub_id in sorted(self._channels):
            channel = self._channels[sub_id]
            outgoing = darray
            if channel.sub.transform is not None:
                # In-flight transformation: a transformed copy leaves;
                # the publisher's own data is untouched.
                outgoing = DistributedArray(
                    self.src_descriptor, self.comm.rank,
                    {region: channel.sub.transform.apply(arr)
                     for region, arr in darray.patches.items()})
            if self.comm.rank == 0:
                for r in range(channel.inter.remote_size):
                    channel.inter.send("data", dest=r, tag=CTRL_TAG)
            execute_inter(channel.schedule, channel.inter, "src",
                          outgoing, tag=DATA_TAG)
            served += 1
        self.publishes += 1
        return served

    def close(self) -> None:
        """Shut the topic down: every remaining channel gets a bye."""
        for sub_id in sorted(self._channels):
            self._close_channel(sub_id)

    @property
    def subscriber_count(self) -> int:
        return len(self._channels)


class Subscriber:
    """The consuming side: one subscription on one topic."""

    def __init__(self, comm: Communicator, ns: NameService,
                 board: SubscriptionBoard, topic: str,
                 layout: DistArrayDescriptor, transform=None):
        self.comm = comm
        self.board = board
        self.layout = layout
        if comm.rank == 0:
            sub = board.subscribe(topic, layout, transform)
        else:
            sub = None
        got = comm.bcast(_payload.Raw(sub) if sub is not None else None,
                         root=0)
        self.sub = got.value if isinstance(got, _payload.Raw) else got
        self.inter = ns.accept(self.sub.service, comm)
        if comm.rank == 0:
            src_desc = self.inter.recv(source=0, tag=HELLO_TAG)
        else:
            src_desc = None
        self.src_descriptor = comm.bcast(src_desc, root=0)
        self.schedule = build_region_schedule(self.src_descriptor, layout)
        self._open = True
        self.received = 0

    def receive(self) -> DistributedArray | None:
        """Block for the next publish; returns the local piece, or None
        when the channel was closed (publisher shutdown or our own
        departure completing)."""
        if not self._open:
            raise ConnectionError_("subscription channel already closed")
        ctrl = self.inter.recv(source=0, tag=CTRL_TAG)
        if ctrl == "bye":
            self._open = False
            return None
        darray = DistributedArray.allocate(self.layout, self.comm.rank)
        execute_inter(self.schedule, self.inter, "dst", darray,
                      tag=DATA_TAG)
        self.received += 1
        return darray

    def leave(self) -> None:
        """Depart gracefully: flag the board, then drain until the
        publisher's bye arrives."""
        if self.comm.rank == 0:
            self.board.unsubscribe(self.sub)
        self.comm.barrier()
        while self._open:
            self.receive()
