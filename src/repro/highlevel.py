"""High-level convenience API — §6's "user-friendly simplifications".

"The complexity of the current port interfaces alludes to the low-level
'assembly-language' nature of our current understanding of this
technology.  More user-friendly simplifications will be developed for
the most common operations, to make this technology more readily
available and practical for everyday usage."

Two simplifications cover the overwhelmingly common cases:

* :func:`redistribute` — one call to move a replicated array between
  two decompositions inside one job (testing, bootstrapping, demos);
* :class:`Coupler` — one object per coupled field between two programs:
  the producer calls :meth:`Coupler.publish`, the consumer
  :meth:`Coupler.subscribe`; descriptor exchange, schedule construction
  and caching all happen behind the scenes.  :meth:`Coupler.open` gives
  a persistent channel with ``push``/``pull`` for time loops.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.errors import ConnectionError_, ScheduleError
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.dad.template import Template, block_template
from repro.schedule.bufpool import BufferPool
from repro.schedule.builder import GLOBAL_CACHE
from repro.schedule.costmodel import (choose_planner, resolve_planner,
                                      resolve_round_bytes)
from repro.schedule.delta import compile_delta
from repro.schedule.executor import execute_inter, execute_intra
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator, NameService
from repro.simmpi.runner import run_spmd
from repro.util.counters import REDIST_STATS

#: Process-wide schedule cache shared by the convenience layer (an
#: alias of :data:`repro.schedule.builder.GLOBAL_CACHE`, so couplings,
#: reorgs and live resizes all reuse each other's compiled schedules).
_cache = GLOBAL_CACHE

_HANDSHAKE_TAG = 150
_DATA_TAG = 151
_RESIZE_TAG = 152


def redistribute(global_array: np.ndarray,
                 src_grid: Sequence[int],
                 dst_grid: Sequence[int],
                 *, backend: str | None = None,
                 planner: str | None = None) -> np.ndarray:
    """Scatter ``global_array`` onto ``src_grid`` blocks, redistribute to
    ``dst_grid`` blocks, and reassemble — the whole Fig. 1 pipeline in
    one call (runs an SPMD job internally).

    ``backend="procs"`` runs the ranks as real processes with payloads
    in shared memory (see :mod:`repro.simmpi.transport`); the default
    follows ``REPRO_BACKEND`` / threads.  ``planner`` picks the
    execution strategy (``p2p``/``collective``/``auto``, default
    ``REPRO_PLANNER`` then ``p2p``)."""
    global_array = np.asarray(global_array)
    src = DistArrayDescriptor(
        block_template(global_array.shape, src_grid), global_array.dtype)
    dst = DistArrayDescriptor(
        block_template(global_array.shape, dst_grid), global_array.dtype)
    sched = _cache.get(src, dst, planner=resolve_planner(planner))
    n = max(src.nranks, dst.nranks)

    def main(comm):
        sa = (DistributedArray.from_global(src, comm.rank, global_array)
              if comm.rank < src.nranks else None)
        da = (DistributedArray.allocate(dst, comm.rank)
              if comm.rank < dst.nranks else None)
        execute_intra(sched, comm, src_array=sa, dst_array=da,
                      src_ranks=range(src.nranks),
                      dst_ranks=range(dst.nranks), planner=planner)
        return da

    parts = [p for p in run_spmd(n, main, backend=backend) if p is not None]
    return DistributedArray.assemble(parts)


def _resolve_new_descriptor(old_desc: DistArrayDescriptor, new_dist,
                            new_nranks: int | None) -> DistArrayDescriptor:
    """Normalize ``reconfigure``'s target: a descriptor is taken as-is,
    a template is wrapped with the old dtype, a process-grid sequence
    becomes a block template over the old shape."""
    if isinstance(new_dist, DistArrayDescriptor):
        new_desc = new_dist
    elif isinstance(new_dist, Template):
        new_desc = DistArrayDescriptor(new_dist, old_desc.dtype)
    else:
        new_desc = DistArrayDescriptor(
            block_template(old_desc.shape, tuple(new_dist)), old_desc.dtype)
    if new_nranks is not None and new_desc.nranks != int(new_nranks):
        raise ScheduleError(
            f"new distribution spans {new_desc.nranks} ranks, caller "
            f"asked for {new_nranks}")
    if new_desc.shape != old_desc.shape:
        raise ScheduleError(
            f"cannot resize between shapes {old_desc.shape} and "
            f"{new_desc.shape}")
    if new_desc.dtype != old_desc.dtype:
        raise ScheduleError(
            f"cannot resize between dtypes {old_desc.dtype} and "
            f"{new_desc.dtype}")
    return new_desc


def reconfigure(comm: Communicator, darray: DistributedArray | None,
                new_dist, new_nranks: int | None = None, *,
                planner: str | None = None,
                round_bytes: int | None = None,
                cache=None) -> DistributedArray | None:
    """Resize a live distributed array to a new decomposition, moving
    only the bytes whose owner changed — the elastic counterpart of
    :func:`redistribute`.

    Collective over ``comm`` (every rank calls it).  Ranks inside the
    old decomposition pass their live array; ranks joining the cohort
    (``rank >= old nranks``) pass ``None``.  ``new_dist`` is a
    :class:`~repro.dad.descriptor.DistArrayDescriptor`, a
    :class:`~repro.dad.template.Template`, or a process-grid sequence
    (block decomposition); ``new_nranks`` optionally cross-checks it.

    The pipeline is the delta-schedule compiler's
    (:mod:`repro.schedule.delta`): fetch the old→new schedule through
    the shared :class:`~repro.schedule.builder.ScheduleCache` (a
    repeated resize is a pure cache hit, and a first-time resize
    warm-starts from any cached sibling's compiled plans), split it
    into migration + kept, repack kept bytes locally, stream only the
    migration through the existing execution engines (``planner`` /
    ``round_bytes`` as in :func:`redistribute`; the ``auto`` cost
    model picks the tier), then — after a drain barrier guarantees no
    rank still has transfer steps in flight — atomically swap the
    ownership map (:meth:`~repro.dad.darray.DistributedArray.adopt`).

    Returns the surviving handle: for a rank inside the new
    decomposition this is the *same object* it passed in (rebound in
    place, so existing references stay live), or a fresh array for a
    joining rank.  Ranks leaving the cohort get ``None`` and must stop
    using their old handle (its contents are stale by construction).

    ``REDIST_STATS`` accounts the resize on comm rank 0:
    ``migrated_bytes`` / ``kept_bytes`` / ``identity_ranks`` /
    ``resizes`` / ``resize_wall_us``.
    """
    t0 = time.perf_counter()
    if comm.rank == 0 and darray is None:
        raise ScheduleError(
            "reconfigure: rank 0 must hold the live array (it broadcasts "
            "the old decomposition)")
    old_desc = comm.bcast(darray.descriptor if comm.rank == 0 else None,
                          root=0)
    new_desc = _resolve_new_descriptor(old_desc, new_dist, new_nranks)
    old_n, new_n = old_desc.nranks, new_desc.nranks
    if comm.size < max(old_n, new_n):
        raise ScheduleError(
            f"reconfigure needs {max(old_n, new_n)} ranks "
            f"(old={old_n}, new={new_n}), comm has {comm.size}")
    me = comm.rank
    if (darray is None) != (me >= old_n):
        raise ScheduleError(
            f"rank {me}: ranks below the old size {old_n} pass their live "
            f"array, ranks joining pass None")
    if darray is not None and \
            darray.descriptor.cache_key() != old_desc.cache_key():
        raise ScheduleError(
            f"rank {me}: local array's decomposition differs from rank "
            f"0's — the cohort disagrees on the old distribution")
    delta = compile_delta(old_desc, new_desc, cache=_cache if cache is None
                          else cache)
    incoming = None
    if me < new_n:
        if me in delta.identity_ranks and darray is not None:
            # Ownership unchanged: keep the buffer, no repack at all.
            incoming = darray
        else:
            incoming = DistributedArray.allocate(new_desc, me)
            if darray is not None:
                delta.apply_local(me, darray.flat_local(),
                                  incoming.flat_local())
    if comm.size > max(old_n, new_n):
        # Spare ranks hold neither side, and collective rounds need
        # every comm rank on at least one; all ranks compute this
        # predicate identically, so the cohort agrees on p2p.
        planner = "p2p"
    execute_intra(delta.migration, comm, src_array=darray,
                  dst_array=incoming, src_ranks=range(old_n),
                  dst_ranks=range(new_n), tag=_RESIZE_TAG,
                  planner=planner, round_bytes=round_bytes)
    # Drain: no rank may swap its ownership map while any peer still
    # has migration steps in flight — after this barrier every receive
    # everywhere has completed, so the swap is globally atomic.
    comm.barrier()
    result = None
    if me < new_n:
        result = (darray.adopt(incoming, new_desc) if darray is not None
                  else incoming)
    if me == 0:
        REDIST_STATS.add("resizes")
        REDIST_STATS.add("migrated_bytes", delta.migrated_bytes())
        REDIST_STATS.add("kept_bytes", delta.kept_bytes())
        REDIST_STATS.add("identity_ranks", len(delta.identity_ranks))
        REDIST_STATS.add("resize_wall_us",
                         int((time.perf_counter() - t0) * 1e6))
    return result


class Channel:
    """A persistent coupled-field channel (see :meth:`Coupler.open`).

    Rides the zero-copy persistent engines: the producer packs through a
    per-channel :class:`~repro.schedule.bufpool.BufferPool` (zero
    steady-state allocations) and ships move/borrow-semantics payloads;
    the consumer preposts recv-into-destination slots so in-flight data
    lands straight in ``channel.array``'s consolidated local base.
    ``pool_stats`` exposes the pool counters (producer side; all zeros
    on the consumer, which needs no staging at all).

    ``one_sided=True`` requests the RMA execution tier (both sides must
    agree; ``one_sided=None`` follows ``REPRO_RMA``): on the procs
    backend the consumer's array lives inside a shared RMA window and
    each ``push`` writes directly into it, synchronized by exposure
    epochs instead of message matching.  Note the coupling this buys
    its speed with: an RMA ``push`` waits for the consumer's matching
    ``pull`` epoch, so producer and consumer proceed in lockstep —
    two programs that each push before pulling the reverse channel
    must stay two-sided (or pre-arm) to avoid a cycle.

    ``planner="collective"`` (or ``auto`` deciding so, or
    ``REPRO_PLANNER``) swaps both engines for the memory-bounded
    collective tier (:mod:`repro.schedule.collplan`): pushes ship
    acknowledged ``round_bytes``-capped rounds, so peak transfer
    residency is O(round buffer) per rank instead of O(pairs) — and,
    like the RMA tier, a push does not return until the consumer has
    pulled the step, so producer and consumer proceed in lockstep.
    """

    def __init__(self, inter: Intercommunicator, role: str,
                 schedule, darray: DistributedArray,
                 one_sided: bool | None = None,
                 planner: str | None = None):
        self._inter = inter
        self._role = role
        self._schedule = schedule
        self._darray = darray
        self.pool = BufferPool()
        self._engine = None
        self._mode = (None if one_sided is None
                      else ("rma" if one_sided else "two_sided"))
        self._planner = choose_planner(
            schedule, np.dtype(darray.descriptor.dtype).itemsize,
            planner=planner)
        self.transfers = 0

    @property
    def planner(self) -> str:
        """The resolved execution strategy ("p2p" or "collective")."""
        return self._planner

    def _collective_plan(self):
        itemsize = np.dtype(self._darray.descriptor.dtype).itemsize
        return self._schedule.collective_plan(itemsize,
                                              resolve_round_bytes())

    def push(self) -> None:
        """Producer side: send the current contents of the local array."""
        if self._role != "source":
            raise ConnectionError_("push() is for the publishing side")
        if self._engine is None:
            if self._planner == "collective":
                from repro.schedule.collplan import CollectiveSender
                self._engine = CollectiveSender(
                    self._schedule, self._collective_plan(), self._inter,
                    self._darray, tag=_DATA_TAG, pool=self.pool)
            else:
                self._engine = self._schedule.persistent_sender(
                    self._inter, self._darray, tag=_DATA_TAG,
                    pool=self.pool, mode=self._mode)
        self._engine.step()
        self.transfers += 1

    def pull(self) -> DistributedArray:
        """Consumer side: receive the next snapshot into the local array."""
        if self._role != "destination":
            raise ConnectionError_("pull() is for the subscribing side")
        if self._engine is None:
            if self._planner == "collective":
                from repro.schedule.collplan import CollectiveReceiver
                self._engine = CollectiveReceiver(
                    self._schedule, self._collective_plan(), self._inter,
                    self._darray, tag=_DATA_TAG)
            else:
                self._engine = self._schedule.persistent_receiver(
                    self._inter, self._darray, tag=_DATA_TAG,
                    mode=self._mode)
        self._engine.step()
        self.transfers += 1
        return self._darray

    @property
    def mode(self) -> str | None:
        """The engine's resolved execution mode (``None`` before the
        first transfer constructs it; collective engines have no
        two-sided/RMA distinction)."""
        return getattr(self._engine, "mode", None)

    def close(self) -> None:
        """Release engine resources (RMA windows).  Idempotent; safe on
        channels that never transferred."""
        if self._engine is not None and hasattr(self._engine, "close"):
            self._engine.close()

    @property
    def array(self) -> DistributedArray:
        return self._darray

    @property
    def pool_stats(self) -> dict:
        """Snapshot of the channel's buffer-pool counters."""
        return self.pool.stats.snapshot()


class Coupler:
    """One-line coupling of a named field between two programs.

    Both programs construct ``Coupler(name, nameservice)``; the producer
    then calls :meth:`publish` (or :meth:`open` + ``push``), the
    consumer :meth:`subscribe` (or :meth:`open` + ``pull``).
    """

    def __init__(self, name: str, nameservice: NameService):
        self.name = name
        self.nameservice = nameservice

    # -- connection plumbing ------------------------------------------------

    def _handshake(self, comm: Communicator, role: str,
                   descriptor: DistArrayDescriptor,
                   planner: str | None = None):
        if role == "source":
            inter = self.nameservice.accept(self.name, comm)
        else:
            inter = self.nameservice.connect(self.name, comm)
        if comm.rank == 0:
            inter.send(descriptor, dest=0, tag=_HANDSHAKE_TAG)
            peer = inter.recv(source=0, tag=_HANDSHAKE_TAG)
        else:
            peer = None
        peer = comm.bcast(peer, root=0)
        # Planner participates in the cache key: a collective-tier
        # schedule (with its memoized round plans) never aliases the
        # p2p entry for the same template pair.
        planner = resolve_planner(planner)
        if role == "source":
            sched = _cache.get(descriptor, peer, planner=planner)
        else:
            sched = _cache.get(peer, descriptor, planner=planner)
        return inter, sched

    # -- one-shot -----------------------------------------------------------------

    def publish(self, comm: Communicator, darray: DistributedArray) -> int:
        """Producer: push one snapshot of the field; returns elements
        sent by this rank."""
        inter, sched = self._handshake(comm, "source", darray.descriptor)
        return execute_inter(sched, inter, "src", darray, tag=_DATA_TAG)

    def subscribe(self, comm: Communicator,
                  layout: DistArrayDescriptor) -> DistributedArray:
        """Consumer: receive one snapshot in ``layout``."""
        inter, sched = self._handshake(comm, "destination", layout)
        darray = DistributedArray.allocate(layout, comm.rank)
        execute_inter(sched, inter, "dst", darray, tag=_DATA_TAG)
        return darray

    # -- persistent ------------------------------------------------------------------

    def open(self, comm: Communicator, role: str,
             darray_or_layout, *, one_sided: bool | None = None,
             planner: str | None = None) -> Channel:
        """Open a persistent channel.

        Producer: ``open(comm, "source", darray)``.
        Consumer: ``open(comm, "destination", layout_descriptor)`` —
        the local array is allocated for you (``channel.array``).

        ``one_sided=True`` requests the RMA execution tier (pass it on
        **both** sides; see :class:`Channel`); ``None`` defers to the
        ``REPRO_RMA`` environment variable.  ``planner`` selects the
        redistribution strategy (``p2p``/``collective``/``auto``,
        ``None`` defers to ``REPRO_PLANNER``); the ``auto`` cost model
        is a pure function of the handshaken schedule, the dtype, and
        the environment, so both sides resolve the same strategy
        without negotiating — pass the same value on both sides.
        """
        if role == "source":
            darray = darray_or_layout
            inter, sched = self._handshake(comm, role, darray.descriptor,
                                           planner)
        elif role == "destination":
            layout = darray_or_layout
            darray = DistributedArray.allocate(layout, comm.rank)
            inter, sched = self._handshake(comm, role, layout, planner)
        else:
            raise ConnectionError_(
                f"role must be 'source' or 'destination', got {role!r}")
        return Channel(inter, role, sched, darray, one_sided=one_sided,
                       planner=planner)
