"""1-D resolution-change operators for brokered coupling.

Coarsening uses conservative cell averaging (row-stochastic over the
overlapped source cells); refinement uses linear interpolation of cell
centres.  Both come back as global COO triplets ready for the MCT
sparse-matvec engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def regrid_matrix(n_src: int, n_dst: int
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO (rows, cols, vals) of the ``n_src -> n_dst`` regrid operator."""
    if n_src < 2 or n_dst < 1:
        raise ReproError(
            f"regrid needs n_src >= 2 and n_dst >= 1, got "
            f"{n_src} -> {n_dst}")
    if n_dst <= n_src:
        return _conservative_average(n_src, n_dst)
    return _linear_interpolation(n_src, n_dst)


def _conservative_average(n_src: int, n_dst: int):
    """Each destination cell averages its overlapping source cells,
    weighted by overlap fraction (rows sum to 1)."""
    rows, cols, vals = [], [], []
    src_edges = np.linspace(0.0, 1.0, n_src + 1)
    dst_edges = np.linspace(0.0, 1.0, n_dst + 1)
    for i in range(n_dst):
        lo, hi = dst_edges[i], dst_edges[i + 1]
        j0 = int(np.searchsorted(src_edges, lo, "right")) - 1
        j1 = int(np.searchsorted(src_edges, hi, "left"))
        for j in range(j0, j1):
            overlap = min(hi, src_edges[j + 1]) - max(lo, src_edges[j])
            if overlap > 0:
                rows.append(i)
                cols.append(j)
                vals.append(overlap / (hi - lo))
    return (np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(vals, dtype=np.float64))


def _linear_interpolation(n_src: int, n_dst: int):
    """Destination cell centres linearly interpolated between source
    cell centres (clamped at the boundary half-cells)."""
    rows, cols, vals = [], [], []
    xs = (np.arange(n_src) + 0.5) / n_src
    xd = (np.arange(n_dst) + 0.5) / n_dst
    for i, x in enumerate(xd):
        if x <= xs[0]:
            rows.append(i)
            cols.append(0)
            vals.append(1.0)
            continue
        if x >= xs[-1]:
            rows.append(i)
            cols.append(n_src - 1)
            vals.append(1.0)
            continue
        j = int(np.searchsorted(xs, x)) - 1
        t = (x - xs[j]) / (xs[j + 1] - xs[j])
        rows += [i, i]
        cols += [j, j + 1]
        vals += [1.0 - t, t]
    return (np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(vals, dtype=np.float64))
