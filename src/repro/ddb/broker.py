"""The broker: offer/request matching and coupling orchestration.

The broker object is control-plane only.  It records offers, assigns a
private rendezvous name per request, and tells the consumer how to
regrid — the field data flows directly between the two programs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.dad.template import block_template
from repro.ddb.regrid import regrid_matrix
from repro.mct.attrvect import AttrVect
from repro.mct.gsmap import GlobalSegMap
from repro.mct.sparsematrix import InterpolationScheduler, SparseMatrix
from repro.schedule.builder import build_region_schedule
from repro.schedule.executor import execute_inter
from repro.simmpi import payload as _payload
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import NameService

DDB_DATA_TAG = 210


@dataclass
class _Offer:
    field: str
    resolution: int
    producer_nranks: int
    next_request: int = 0


class DataBroker:
    """Shared control-plane object for brokered model coupling."""

    def __init__(self, nameservice: NameService):
        self.nameservice = nameservice
        self._lock = threading.Lock()
        self._offers: dict[str, _Offer] = {}

    # -- registry -----------------------------------------------------------

    def _register_offer(self, field: str, resolution: int,
                        nranks: int) -> None:
        with self._lock:
            if field in self._offers:
                raise ReproError(f"field {field!r} already offered")
            self._offers[field] = _Offer(field, int(resolution), nranks)

    def _claim_request(self, field: str) -> tuple[_Offer, str]:
        with self._lock:
            try:
                offer = self._offers[field]
            except KeyError:
                raise ReproError(
                    f"no producer offers field {field!r}; offers: "
                    f"{sorted(self._offers)}") from None
            service = f"ddb/{field}/{offer.next_request}"
            offer.next_request += 1
            return offer, service

    def offered_fields(self) -> list[str]:
        with self._lock:
            return sorted(self._offers)

    # -- producer side ----------------------------------------------------------

    def offer(self, comm: Communicator, field: str,
              darray: DistributedArray) -> None:
        """Register a 1-D field this program produces.

        Collective over the producing cohort; ``darray`` defines the
        resolution (global length) and decomposition.
        """
        desc = darray.descriptor
        if desc.ndim != 1:
            raise ReproError("DDB fields are 1-D profiles")
        if comm.rank == 0:
            self._register_offer(field, desc.shape[0], comm.size)
        comm.barrier()

    def serve(self, comm: Communicator, field: str,
              darray: DistributedArray, requests: int = 1) -> int:
        """Serve ``requests`` consumer requests for ``field``, in
        arrival order.  Collective over the producing cohort.  Returns
        elements sent by this rank."""
        desc = darray.descriptor
        sent = 0
        for _ in range(requests):
            # Requests claim strictly increasing ids; serve them in the
            # same order so accept/connect pairs line up.
            served_id = comm.bcast(
                self._served_counter(field) if comm.rank == 0 else None,
                root=0)
            service = f"ddb/{field}/{served_id}"
            inter = self.nameservice.accept(service, comm)
            # The consumer's intermediate layout is the producer
            # resolution blocked over the consumer's ranks.
            inter_desc = DistArrayDescriptor(
                block_template(desc.shape, (inter.remote_size,)),
                desc.dtype)
            sched = build_region_schedule(desc, inter_desc)
            sent += execute_inter(sched, inter, "src", darray,
                                  tag=DDB_DATA_TAG)
        return sent

    def _served_counter(self, field: str) -> int:
        with self._lock:
            offer = self._offers[field]
            counter = getattr(offer, "_served", 0)
            offer.__dict__["_served"] = counter + 1
            return counter

    # -- consumer side -------------------------------------------------------------

    def request(self, comm: Communicator, field: str,
                resolution: int) -> tuple[np.ndarray, GlobalSegMap]:
        """Fetch ``field`` at this program's ``resolution``.

        Collective over the consuming cohort.  Returns this rank's
        values and the block GlobalSegMap they follow.
        """
        if comm.rank == 0:
            offer, service = self._claim_request(field)
            info = (offer.resolution, service)
        else:
            info = None
        got = comm.bcast(
            _payload.Raw(info) if info is not None else None, root=0)
        src_res, service = got.value if isinstance(got, _payload.Raw) \
            else got

        inter = self.nameservice.connect(service, comm)
        # Stage 1: producer-resolution field onto OUR ranks.
        inter_desc = DistArrayDescriptor(
            block_template((src_res,), (comm.size,)))
        src_side_desc = DistArrayDescriptor(
            block_template((src_res,), (inter.remote_size,)))
        sched = build_region_schedule(src_side_desc, inter_desc)
        staged = DistributedArray.allocate(inter_desc, comm.rank)
        execute_inter(sched, inter, "dst", staged, tag=DDB_DATA_TAG)

        staged_gsmap = GlobalSegMap.block(src_res, comm.size)
        values = np.concatenate(
            [arr for _, arr in staged.iter_patches()]) \
            if staged.local_volume else np.empty(0)

        dst_gsmap = GlobalSegMap.block(int(resolution), comm.size)
        if int(resolution) == src_res:
            return values, dst_gsmap

        # Stage 2: distributed regrid to our resolution.
        rows, cols, vals = regrid_matrix(src_res, int(resolution))
        mine = np.isin(rows, dst_gsmap.global_indices(comm.rank))
        matrix = SparseMatrix(int(resolution), src_res, rows[mine],
                              cols[mine], vals[mine], dst_gsmap,
                              comm.rank)
        scheduler = InterpolationScheduler(comm, matrix, staged_gsmap)
        x_av = AttrVect.from_arrays({field: values})
        y_av = scheduler.apply(comm, x_av)
        return y_av[field].copy(), dst_gsmap
