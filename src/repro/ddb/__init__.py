"""DDB — the Distributed Data Broker model (paper §5).

"Another tool for model coupling is the Distributed Data Broker (DDB),
which is a general purpose tool from UC Berkeley for coupling multiple
parallel models that exchange large volumes of data.  The DDB provides
a mechanism for coupling codes with different grid resolutions and data
representations."

The model here: producers *offer* named 1-D fields (profiles) at their
grid resolution; consumers *request* them at **their own** resolution
and decomposition.  The broker matches offers to requests and plans the
coupling; the data itself never touches the broker — it moves directly
producer→consumer as schedule messages, and the resolution change runs
as a distributed sparse regrid (reusing the MCT interpolation engine)
on the consumer side:

1. the producer-resolution field is redistributed M×N onto the
   consumer's ranks,
2. a conservative-average (coarsening) or linear-interpolation
   (refinement) matrix maps it to the consumer's resolution in parallel.
"""

from repro.ddb.broker import DataBroker
from repro.ddb.regrid import regrid_matrix

__all__ = ["DataBroker", "regrid_matrix"]
