"""Windows: distributed data + functions, shared by owner permission."""

from __future__ import annotations

import enum
from typing import Any, Callable

import numpy as np

from repro.errors import PermissionError_, WindowError
from repro.dad.darray import DistributedArray


class Access(enum.Flag):
    """What a grant lets another module do with a window."""

    READ = enum.auto()    #: read data panes
    WRITE = enum.auto()   #: update data panes
    CALL = enum.auto()    #: invoke registered functions
    FULL = READ | WRITE | CALL


class Window:
    """One module's distributed object: data panes plus functions.

    A *pane* is one named distributed field (this rank's piece).  A
    *function* is a callable the owner exposes to other modules.
    """

    def __init__(self, name: str, owner: str):
        self.name = name
        self.owner = owner
        self._panes: dict[str, DistributedArray] = {}
        self._functions: dict[str, Callable[..., Any]] = {}

    # -- construction (owner side) -----------------------------------------

    def add_pane(self, field: str, darray: DistributedArray) -> None:
        if field in self._panes:
            raise WindowError(
                f"window {self.name!r} already has pane {field!r}")
        self._panes[field] = darray

    def add_function(self, fn_name: str, fn: Callable[..., Any]) -> None:
        if fn_name in self._functions:
            raise WindowError(
                f"window {self.name!r} already has function {fn_name!r}")
        self._functions[fn_name] = fn

    # -- internal accessors --------------------------------------------------

    def pane(self, field: str) -> DistributedArray:
        try:
            return self._panes[field]
        except KeyError:
            raise WindowError(
                f"window {self.name!r} has no pane {field!r}; have "
                f"{sorted(self._panes)}") from None

    def function(self, fn_name: str) -> Callable[..., Any]:
        try:
            return self._functions[fn_name]
        except KeyError:
            raise WindowError(
                f"window {self.name!r} has no function {fn_name!r}") \
                from None

    def pane_names(self) -> list[str]:
        return sorted(self._panes)

    def function_names(self) -> list[str]:
        return sorted(self._functions)


class WindowHandle:
    """What a non-owner module gets: the window filtered by its grant."""

    def __init__(self, window: Window, module: str, access: Access):
        self._window = window
        self._module = module
        self._access = access

    def _require(self, needed: Access, what: str) -> None:
        if not (self._access & needed):
            raise PermissionError_(
                f"module {self._module!r} lacks {needed} on window "
                f"{self._window.name!r} (needed to {what}); owner "
                f"{self._window.owner!r} granted {self._access}")

    def read(self, field: str) -> np.ndarray:
        """A read-only copy of a pane's first local patch region view
        stack (concatenated patch data)."""
        self._require(Access.READ, f"read pane {field!r}")
        pane = self._window.pane(field)
        parts = [arr.copy() for _, arr in pane.iter_patches()]
        return parts[0] if len(parts) == 1 else parts

    def write(self, field: str, values) -> None:
        """Overwrite a pane's local data."""
        self._require(Access.WRITE, f"write pane {field!r}")
        pane = self._window.pane(field)
        patches = list(pane.iter_patches())
        if len(patches) == 1:
            region, arr = patches[0]
            arr[...] = np.asarray(values).reshape(region.shape)
            return
        if not isinstance(values, (list, tuple)) or \
                len(values) != len(patches):
            raise WindowError(
                f"pane {field!r} has {len(patches)} patches; pass a "
                f"matching list of arrays")
        for (region, arr), vals in zip(patches, values):
            arr[...] = np.asarray(vals).reshape(region.shape)

    def call(self, fn_name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke one of the owner's registered functions."""
        self._require(Access.CALL, f"call function {fn_name!r}")
        return self._window.function(fn_name)(*args, **kwargs)

    def pane_names(self) -> list[str]:
        return self._window.pane_names()

    def function_names(self) -> list[str]:
        return self._window.function_names()


class Roccom:
    """The window registry: registration plus owner-granted sharing."""

    def __init__(self) -> None:
        self._windows: dict[str, Window] = {}
        #: (window, module) -> granted access
        self._grants: dict[tuple[str, str], Access] = {}

    # -- owner operations -----------------------------------------------------

    def register(self, window: Window) -> None:
        if window.name in self._windows:
            raise WindowError(f"window {window.name!r} already registered")
        self._windows[window.name] = window

    def unregister(self, owner: str, name: str) -> None:
        window = self._get(name)
        if window.owner != owner:
            raise PermissionError_(
                f"only owner {window.owner!r} may unregister "
                f"{name!r}, not {owner!r}")
        del self._windows[name]
        self._grants = {k: v for k, v in self._grants.items()
                        if k[0] != name}

    def grant(self, owner: str, name: str, module: str,
              access: Access) -> None:
        """The owner shares its window: "other modules can share them
        with the permission of the owner module"."""
        window = self._get(name)
        if window.owner != owner:
            raise PermissionError_(
                f"only owner {window.owner!r} may grant access to "
                f"{name!r}, not {owner!r}")
        self._grants[(name, module)] = access

    def revoke(self, owner: str, name: str, module: str) -> None:
        window = self._get(name)
        if window.owner != owner:
            raise PermissionError_(
                f"only owner {window.owner!r} may revoke access to "
                f"{name!r}")
        self._grants.pop((name, module), None)

    # -- consumer operations ------------------------------------------------------

    def get_window(self, module: str, name: str) -> WindowHandle:
        window = self._get(name)
        if module == window.owner:
            return WindowHandle(window, module, Access.FULL)
        access = self._grants.get((name, module))
        if access is None:
            raise PermissionError_(
                f"module {module!r} has no grant on window {name!r}")
        return WindowHandle(window, module, access)

    def window_names(self) -> list[str]:
        return sorted(self._windows)

    def _get(self, name: str) -> Window:
        try:
            return self._windows[name]
        except KeyError:
            raise WindowError(f"no window {name!r} registered") from None
