"""Roccom-style windows — the integration-framework model (paper §5).

"Roccom is an object-oriented software framework for high performance
parallel rocket simulation.  Roccom enables coupling of multiple
physics modules, each of which models various parts of the overall
problem ...  A physics module builds distributed objects (data and
functions) called windows and registers them in Roccom so that other
modules can share them with the permission of the owner module."

The model: a :class:`Window` bundles named distributed data *panes*
(per-rank :class:`~repro.dad.DistributedArray` pieces) and callable
*functions*; the :class:`Roccom` registry enforces owner-granted
permissions (read / write / call) before any other module touches a
window.
"""

from repro.roccom.windows import Access, Roccom, Window, WindowHandle

__all__ = ["Roccom", "Window", "WindowHandle", "Access"]
