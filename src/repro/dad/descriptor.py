"""The Distributed Array Descriptor proper: template + array metadata.

Paper §4.1: "Parallel components can register their parallel data fields
by providing a handle to a Distributed Array Descriptor (DAD) object ...
The DAD interface provides run-time access to information regarding the
layout, allocation and data decomposition of a given distributed data
field", including "which access modes for M×N transfers with that data
field are allowed (read, write or read/write)".
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.errors import AlignmentError
from repro.dad.template import Template
from repro.util.regions import Region, RegionList


class AccessMode(enum.Flag):
    """Allowed M×N transfer directions for a registered field."""

    READ = enum.auto()    #: field may be a transfer source
    WRITE = enum.auto()   #: field may be a transfer destination
    READWRITE = READ | WRITE

    def allows_read(self) -> bool:
        return bool(self & AccessMode.READ)

    def allows_write(self) -> bool:
        return bool(self & AccessMode.WRITE)


class DistArrayDescriptor:
    """Describes one distributed array: its template, dtype and access.

    The descriptor is the *only* information the M×N layer needs about a
    field — schedules are computed purely from descriptor pairs, which
    is what makes third-party-initiated connections possible (§4.1).
    """

    def __init__(self, template: Template, dtype: np.dtype | str = np.float64,
                 *, name: str = "", mode: AccessMode = AccessMode.READWRITE):
        self.template = template
        self.dtype = np.dtype(dtype)
        self.name = name
        self.mode = mode
        self._region_cache: dict[int, RegionList] = {}

    def __getstate__(self):
        # The region memo is rebuilt on demand and, on the threads
        # backend, may be concurrently filled by sibling ranks of a
        # shared descriptor while rank 0 pickles it for the handshake —
        # serializing it would race (and ship O(extent) regions for
        # cyclic templates for nothing).
        state = dict(self.__dict__)
        state["_region_cache"] = {}
        return state

    # -- layout queries (the DAD run-time interface) -----------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.template.shape

    @property
    def ndim(self) -> int:
        return self.template.ndim

    @property
    def nranks(self) -> int:
        return self.template.nranks

    def local_regions(self, rank: int) -> RegionList:
        """Global regions of the array stored by ``rank``.

        Memoized per rank: cyclic templates enumerate O(extent) regions
        and the executors ask once per transfer, so recomputing would
        make steady-state transfer cost scale with the region count
        instead of the byte count.  Sound because templates are
        immutable after construction.
        """
        regions = self._region_cache.get(rank)
        if regions is None:
            regions = self._region_cache[rank] = \
                self.template.owner_regions(rank)
        return regions

    def local_volume(self, rank: int) -> int:
        return self.template.local_volume(rank)

    def owner_of(self, point: Sequence[int]) -> int:
        return self.template.owner_of(point)

    def descriptor_entries(self) -> int:
        """Descriptor encoding size in integer entries (compactness
        metric for experiment E7)."""
        return self.template.descriptor_entries()

    def descriptor_nbytes(self) -> int:
        return self.descriptor_entries() * 8

    def cache_key(self) -> tuple:
        """Schedule-cache identity: two descriptors with equal keys can
        reuse each other's communication schedules even if they describe
        different actual arrays (paper §2.3)."""
        return (self.template.cache_key(), self.dtype.str)

    def ownership_key(self, rank: int) -> tuple:
        """Hashable fingerprint of ``rank``'s exact ownership: the
        ``(lo, hi)`` corner pairs of its patches in ``lo`` order.  Two
        descriptors agreeing on a rank's key own *identical* global
        elements with an identical local patch layout, so compiled
        per-rank plans addressing that layout transfer verbatim — the
        reuse test of the delta-schedule compiler
        (:mod:`repro.schedule.delta`).  Ranks outside the template
        (``rank >= nranks``) own nothing and fingerprint empty."""
        if not (0 <= rank < self.nranks):
            return ()
        # Sorted by lo — the same normalization LocalIndexer applies to
        # the patch layout, so equal keys really mean equal layouts.
        return tuple(sorted((r.lo, r.hi) for r in self.local_regions(rank)))

    # -- alignment ---------------------------------------------------------

    def check_alignment(self, shape: Sequence[int]) -> None:
        """Verify an actual array of ``shape`` can align to this template."""
        if tuple(int(s) for s in shape) != self.shape:
            raise AlignmentError(
                f"array shape {tuple(shape)} does not align to template "
                f"shape {self.shape}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (f"DistArrayDescriptor({label} shape={self.shape} "
                f"dtype={self.dtype} nranks={self.nranks} mode={self.mode})")
