"""Distribution templates: the virtual arrays of the HPF/DAD model.

A template "can be thought of as a virtual array that specifies the
logical distribution of the array across the processes" (paper §2.2.2).
Two concrete kinds exist:

* :class:`CartesianTemplate` — per-axis distributions over a process
  grid (the common case: all axis types compose freely), and
* :class:`ExplicitTemplate` — the one array-global distribution type:
  arbitrary rectangular patches per rank, validated to tile the array.

Templates are rank-count aware but *communicator independent*: the same
template can describe the layout of the M side or the N side of a
transfer, which is exactly what the schedule builder needs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import product
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DistributionError
from repro.dad.axis import AxisDistribution
from repro.util.indexing import row_major_coords, row_major_offset
from repro.util.regions import Region, RegionList, tile_check


class Template(ABC):
    """Abstract distribution template over ``nranks`` processes."""

    shape: tuple[int, ...]
    nranks: int

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def global_region(self) -> Region:
        return Region.from_shape(self.shape)

    @abstractmethod
    def owner_regions(self, rank: int) -> RegionList:
        """Global regions owned by ``rank`` (disjoint, ascending order)."""

    @abstractmethod
    def owner_of(self, point: Sequence[int]) -> int:
        """Rank owning the element at global coordinates ``point``."""

    @abstractmethod
    def descriptor_entries(self) -> int:
        """Size of the descriptor encoding, in integer entries."""

    # -- shared ------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise DistributionError(
                f"rank {rank} out of range for {self.nranks}-rank template")

    def local_volume(self, rank: int) -> int:
        return self.owner_regions(rank).volume

    def all_owner_regions(self) -> list[tuple[int, Region]]:
        """Every (rank, region) ownership pair of the template."""
        out = []
        for r in range(self.nranks):
            for reg in self.owner_regions(r):
                out.append((r, reg))
        return out

    def validate(self) -> None:
        """Check the fundamental ownership invariant: the per-rank
        regions partition the global index space exactly."""
        regions = [reg for _, reg in self.all_owner_regions()]
        tile_check(regions, self.global_region)

    def cache_key(self) -> tuple:
        """Hashable identity used to key schedule caches (paper §2.3:
        schedules are reusable across arrays conforming to the same
        template)."""
        return (type(self).__name__, self.shape, self.nranks,
                self._key_details())

    def _key_details(self) -> tuple:
        return ()


class CartesianTemplate(Template):
    """Per-axis distributions composed over a process grid.

    Parameters
    ----------
    axes:
        One :class:`~repro.dad.axis.AxisDistribution` per array axis.
        The process grid shape is ``tuple(d.nprocs for d in axes)`` and
        ranks are row-major over that grid.
    """

    def __init__(self, axes: Sequence[AxisDistribution]):
        if not axes:
            raise DistributionError("template needs at least one axis")
        self.axes = tuple(axes)
        self.shape = tuple(d.extent for d in self.axes)
        self.grid = tuple(d.nprocs for d in self.axes)
        self.nranks = int(np.prod(self.grid))

    def proc_coords(self, rank: int) -> tuple[int, ...]:
        """Process-grid coordinates of ``rank`` (row-major)."""
        self._check_rank(rank)
        return row_major_coords(rank, self.grid)

    def proc_rank(self, coords: Sequence[int]) -> int:
        return row_major_offset(coords, self.grid)

    def owner_regions(self, rank: int) -> RegionList:
        coords = self.proc_coords(rank)
        per_axis = [d.intervals(c) for d, c in zip(self.axes, coords)]
        regions = [
            Region(tuple(a for a, _ in combo), tuple(b for _, b in combo))
            for combo in product(*per_axis)
        ]
        return RegionList(regions, validate=False)

    def owner_of(self, point: Sequence[int]) -> int:
        if len(point) != self.ndim:
            raise DistributionError(
                f"point {point} has wrong rank for template {self.shape}")
        coords = tuple(d.owner(int(p)) for d, p in zip(self.axes, point))
        return self.proc_rank(coords)

    def descriptor_entries(self) -> int:
        return sum(d.descriptor_entries() for d in self.axes)

    def _key_details(self) -> tuple:
        details = []
        for d in self.axes:
            entry: tuple = (type(d).__name__, d.extent, d.nprocs)
            block = getattr(d, "block", None)
            if block is not None:
                entry += (block,)
            sizes = getattr(d, "sizes", None)
            if sizes is not None:
                entry += (tuple(sizes),)
            owners = getattr(d, "owners", None)
            if owners is not None:
                entry += (owners.tobytes(),)
            details.append(entry)
        return tuple(details)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        axes = ", ".join(type(d).__name__ for d in self.axes)
        return f"CartesianTemplate({self.shape}, grid={self.grid}, [{axes}])"


class ExplicitTemplate(Template):
    """Arbitrary rectangular patches assigned to ranks (paper: the one
    distribution type "global to the entire array rather than
    axis-specific").

    The patches "must not overlap and must completely cover the
    template" — both are validated at construction.
    """

    def __init__(self, shape: Sequence[int],
                 patches: Iterable[tuple[int, Region]],
                 nranks: int | None = None):
        self.shape = tuple(int(s) for s in shape)
        self.patches: list[tuple[int, Region]] = [
            (int(r), reg) for r, reg in patches]
        if not self.patches:
            raise DistributionError("explicit template needs >= 1 patch")
        max_rank = max(r for r, _ in self.patches)
        self.nranks = int(nranks) if nranks is not None else max_rank + 1
        if max_rank >= self.nranks:
            raise DistributionError(
                f"patch rank {max_rank} exceeds nranks={self.nranks}")
        tile_check([reg for _, reg in self.patches], self.global_region)
        self._by_rank: dict[int, list[Region]] = {}
        for r, reg in self.patches:
            self._by_rank.setdefault(r, []).append(reg)

    def owner_regions(self, rank: int) -> RegionList:
        self._check_rank(rank)
        return RegionList(self._by_rank.get(rank, []), validate=False)

    def owner_of(self, point: Sequence[int]) -> int:
        for r, reg in self.patches:
            if reg.contains_point(point):
                return r
        raise DistributionError(f"point {tuple(point)} outside template")

    def descriptor_entries(self) -> int:
        # lo + hi per axis plus the owning rank, per patch
        return len(self.patches) * (2 * self.ndim + 1)

    def _key_details(self) -> tuple:
        return tuple((r, reg.lo, reg.hi) for r, reg in self.patches)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ExplicitTemplate({self.shape}, {len(self.patches)} patches, "
                f"{self.nranks} ranks)")


def block_template(shape: Sequence[int],
                   grid: Sequence[int]) -> CartesianTemplate:
    """Convenience: a pure block distribution of ``shape`` over ``grid``."""
    from repro.dad.axis import Block

    if len(shape) != len(grid):
        raise DistributionError(
            f"shape {shape} and grid {grid} rank mismatch")
    return CartesianTemplate(
        [Block(int(n), int(p)) for n, p in zip(shape, grid)])
