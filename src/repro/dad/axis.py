"""Per-axis distribution types for the DAD (paper §2.2.2).

Each distribution describes how one axis of extent ``n`` is divided
among ``nprocs`` process coordinates.  The two queries every type must
answer are :meth:`~AxisDistribution.owner` (element -> process) and
:meth:`~AxisDistribution.intervals` (process -> owned half-open
intervals); everything else in the library is built on those.

``descriptor_entries`` reports the storage cost of the description
itself — the quantity behind the paper's compactness claim ("using the
most compact descriptor appropriate for a given distribution usually
allows ... better performance than ... a completely general,
structureless linearization").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import DistributionError


class AxisDistribution(ABC):
    """How one template axis of extent ``n`` maps onto ``nprocs`` procs."""

    def __init__(self, extent: int, nprocs: int):
        if extent < 0:
            raise DistributionError(f"negative axis extent {extent}")
        if nprocs < 1:
            raise DistributionError(f"axis needs >= 1 process, got {nprocs}")
        self.extent = int(extent)
        self.nprocs = int(nprocs)

    @abstractmethod
    def owner(self, index: int) -> int:
        """Process coordinate owning global index ``index``."""

    @abstractmethod
    def intervals(self, proc: int) -> list[tuple[int, int]]:
        """Half-open ``[lo, hi)`` intervals owned by ``proc``, ascending."""

    @abstractmethod
    def descriptor_entries(self) -> int:
        """Number of integers needed to encode this distribution."""

    # -- shared helpers ---------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.extent):
            raise DistributionError(
                f"index {index} out of range for axis extent {self.extent}")

    def _check_proc(self, proc: int) -> None:
        if not (0 <= proc < self.nprocs):
            raise DistributionError(
                f"process coordinate {proc} out of range (nprocs={self.nprocs})")

    def local_size(self, proc: int) -> int:
        """Number of elements owned by ``proc``."""
        return sum(b - a for a, b in self.intervals(proc))

    def validate_partition(self) -> None:
        """Check that the procs' intervals partition ``[0, extent)``."""
        marks = np.zeros(self.extent, dtype=np.int32)
        for p in range(self.nprocs):
            for a, b in self.intervals(p):
                if not (0 <= a <= b <= self.extent):
                    raise DistributionError(
                        f"interval [{a},{b}) of proc {p} out of axis range")
                marks[a:b] += 1
        if self.extent and not np.all(marks == 1):
            bad = int(np.flatnonzero(marks != 1)[0])
            raise DistributionError(
                f"axis element {bad} owned {int(marks[bad])} times")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(extent={self.extent}, "
                f"nprocs={self.nprocs})")


class Collapsed(AxisDistribution):
    """All elements of the axis belong to a single process."""

    def __init__(self, extent: int):
        super().__init__(extent, 1)

    def owner(self, index: int) -> int:
        self._check_index(index)
        return 0

    def intervals(self, proc: int) -> list[tuple[int, int]]:
        self._check_proc(proc)
        return [(0, self.extent)] if self.extent else []

    def descriptor_entries(self) -> int:
        return 1


class Block(AxisDistribution):
    """One contiguous block per process (HPF BLOCK).

    Uses the HPF convention: block size ``ceil(n / p)``; trailing
    processes may own fewer (or zero) elements.
    """

    def __init__(self, extent: int, nprocs: int):
        super().__init__(extent, nprocs)
        self.block = -(-extent // nprocs) if extent else 1

    def owner(self, index: int) -> int:
        self._check_index(index)
        return index // self.block

    def intervals(self, proc: int) -> list[tuple[int, int]]:
        self._check_proc(proc)
        lo = min(proc * self.block, self.extent)
        hi = min(lo + self.block, self.extent)
        return [(lo, hi)] if hi > lo else []

    def descriptor_entries(self) -> int:
        return 2


class BlockCyclic(AxisDistribution):
    """Fixed-size blocks dealt round-robin (HPF CYCLIC(k)).

    ``block=1`` is the classic cyclic distribution; a block size of
    ``ceil(n/p)`` degenerates to :class:`Block`.
    """

    def __init__(self, extent: int, nprocs: int, block: int):
        super().__init__(extent, nprocs)
        if block < 1:
            raise DistributionError(f"block size must be >= 1, got {block}")
        self.block = int(block)

    def owner(self, index: int) -> int:
        self._check_index(index)
        return (index // self.block) % self.nprocs

    def intervals(self, proc: int) -> list[tuple[int, int]]:
        self._check_proc(proc)
        out = []
        nblocks = -(-self.extent // self.block) if self.extent else 0
        for b in range(proc, nblocks, self.nprocs):
            lo = b * self.block
            hi = min(lo + self.block, self.extent)
            out.append((lo, hi))
        return out

    def descriptor_entries(self) -> int:
        return 3


class Cyclic(BlockCyclic):
    """One element per block (HPF CYCLIC)."""

    def __init__(self, extent: int, nprocs: int):
        super().__init__(extent, nprocs, 1)


class GeneralizedBlock(AxisDistribution):
    """One block per process with per-process sizes (Global Arrays style).

    ``sizes`` must be non-negative and sum to the axis extent.
    """

    def __init__(self, extent: int, sizes: Sequence[int]):
        super().__init__(extent, len(sizes))
        self.sizes = tuple(int(s) for s in sizes)
        if any(s < 0 for s in self.sizes):
            raise DistributionError(f"negative block size in {self.sizes}")
        if sum(self.sizes) != extent:
            raise DistributionError(
                f"generalized block sizes {self.sizes} sum to "
                f"{sum(self.sizes)}, expected {extent}")
        self._bounds = np.concatenate(([0], np.cumsum(self.sizes)))

    def owner(self, index: int) -> int:
        self._check_index(index)
        # bounds is ascending; searchsorted right gives the block index
        return int(np.searchsorted(self._bounds, index, side="right") - 1)

    def intervals(self, proc: int) -> list[tuple[int, int]]:
        self._check_proc(proc)
        lo, hi = int(self._bounds[proc]), int(self._bounds[proc + 1])
        return [(lo, hi)] if hi > lo else []

    def descriptor_entries(self) -> int:
        return self.nprocs + 1


class Implicit(AxisDistribution):
    """Arbitrary per-element owner map (HPF-style implicit).

    Complete flexibility "at the cost of one index element per data
    element, and potentially expensive queries into the descriptor".
    """

    def __init__(self, owners: Sequence[int], nprocs: int | None = None):
        owners_arr = np.asarray(owners, dtype=np.int64)
        if owners_arr.ndim != 1:
            raise DistributionError("implicit owner map must be 1-D")
        n = int(owners_arr.max()) + 1 if owners_arr.size else 1
        nprocs = n if nprocs is None else int(nprocs)
        super().__init__(len(owners_arr), nprocs)
        if owners_arr.size and (owners_arr.min() < 0 or owners_arr.max() >= nprocs):
            raise DistributionError(
                f"owner map values must lie in [0, {nprocs})")
        self.owners = owners_arr

    def owner(self, index: int) -> int:
        self._check_index(index)
        return int(self.owners[index])

    def intervals(self, proc: int) -> list[tuple[int, int]]:
        self._check_proc(proc)
        mask = self.owners == proc
        if not mask.any():
            return []
        # Compress the boolean mask into maximal runs (vectorized).
        padded = np.concatenate(([False], mask, [False]))
        edges = np.flatnonzero(padded[1:] != padded[:-1])
        starts, stops = edges[0::2], edges[1::2]
        return list(zip(starts.tolist(), stops.tolist()))

    def descriptor_entries(self) -> int:
        return self.extent
