"""Distributed Array Descriptor (DAD) — paper Section 2.2.2.

The DAD is the CCA's generic, bottom-up description of how a dense
multidimensional array is decomposed across processes.  It follows the
HPF model the paper cites: a *template* specifies the logical per-axis
distribution over a process grid; *actual arrays* are aligned to a
template; and the descriptor answers the two questions the M×N layer
needs — "which rank owns global element x?" and "which global regions
does rank r hold, and where in its local storage?".

Supported per-axis distribution types (paper list):

* :class:`Collapsed` — whole axis on one process,
* :class:`Block` — one contiguous block per process,
* :class:`Cyclic` — one element per block, dealt round-robin,
* :class:`BlockCyclic` — fixed-size blocks dealt round-robin,
* :class:`GeneralizedBlock` — one block per process, varying sizes
  (Global Arrays style),
* :class:`Implicit` — arbitrary per-element owner map (HPF style),

plus the one array-global type:

* :class:`ExplicitTemplate` — arbitrary non-overlapping rectangular
  patches assigned to processes, which "must not overlap and must
  completely cover the template".
"""

from repro.dad.axis import (
    AxisDistribution,
    Block,
    BlockCyclic,
    Collapsed,
    Cyclic,
    GeneralizedBlock,
    Implicit,
)
from repro.dad.template import CartesianTemplate, ExplicitTemplate, Template
from repro.dad.descriptor import DistArrayDescriptor, AccessMode
from repro.dad.darray import DistributedArray
from repro.dad.converters import ConverterRegistry, DARepresentation

__all__ = [
    "AxisDistribution",
    "Collapsed",
    "Block",
    "Cyclic",
    "BlockCyclic",
    "GeneralizedBlock",
    "Implicit",
    "Template",
    "CartesianTemplate",
    "ExplicitTemplate",
    "DistArrayDescriptor",
    "AccessMode",
    "DistributedArray",
    "ConverterRegistry",
    "DARepresentation",
]
