"""Per-rank storage of a distributed array's local patches.

A :class:`DistributedArray` is the rank-local half of the DAD picture:
the descriptor says which global regions this rank owns; this object
holds one contiguous NumPy block per owned region, plus the accessors
components use for data-parallel work ("many components ... just need to
be able to access the memory locations constituting the DA", §2.2.2).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import AlignmentError, DistributionError
from repro.dad.descriptor import DistArrayDescriptor
from repro.util.regions import Region


class DistributedArray:
    """Rank-local patches of one distributed array.

    Create with :meth:`allocate` (zeros) or :meth:`from_global`
    (sampling a replicated global array — test/bootstrap convenience).

    Local storage is **consolidated**: one contiguous row-major base
    buffer holds every owned patch (patches sorted by ``region.lo``,
    each flattened row-major), and ``self.patches`` maps each region to
    a shaped *view* into that buffer.  :meth:`flat_local` exposes the
    base buffer, which is what the compiled gather/scatter index plans
    (:mod:`repro.schedule.indexplan`) address — a single ``take`` or
    fancy assignment there reads/writes every patch at once, and slice
    views of it are zero-copy send buffers.  Patch data handed to the
    constructor is copied into the base buffer (value semantics, as
    :meth:`from_global` always had).
    """

    def __init__(self, descriptor: DistArrayDescriptor, rank: int,
                 patches: dict[Region, np.ndarray]):
        descriptor.template._check_rank(rank)
        self.descriptor = descriptor
        self.rank = rank
        owned = sorted(descriptor.local_regions(rank), key=lambda r: r.lo)
        if set(patches) != set(owned):
            raise AlignmentError(
                f"patch regions {sorted(patches, key=lambda r: r.lo)} do not "
                f"match ownership {owned} of rank {rank}")
        for region, arr in patches.items():
            if arr.shape != region.shape:
                raise AlignmentError(
                    f"patch storage shape {arr.shape} != region shape "
                    f"{region.shape}")
        self._base = np.empty(sum(r.volume for r in owned),
                              dtype=descriptor.dtype)
        self.patches = self._bind_patches(owned)
        for region, view in self.patches.items():
            view[...] = patches[region]

    def __reduce__(self):
        # Default pickling would serialize both _base and the patch
        # views, losing the consolidated-buffer aliasing on rebuild.
        # Reconstructing through the constructor restores it (the procs
        # backend ships DistributedArrays between rank processes).
        return (type(self), (self.descriptor, self.rank,
                             {r: v.copy() for r, v in self.patches.items()}))

    def _bind_patches(self, owned: list[Region]) -> dict[Region, np.ndarray]:
        """Carve the base buffer into one shaped view per owned region
        (lo-sorted order — the layout index plans are compiled against).
        """
        views: dict[Region, np.ndarray] = {}
        off = 0
        for region in owned:
            views[region] = self._base[off:off + region.volume].reshape(
                region.shape)
            off += region.volume
        return views

    # -- constructors -----------------------------------------------------

    @classmethod
    def allocate(cls, descriptor: DistArrayDescriptor,
                 rank: int) -> "DistributedArray":
        """Zero-initialized local storage for ``rank``."""
        obj = cls.__new__(cls)
        descriptor.template._check_rank(rank)
        obj.descriptor = descriptor
        obj.rank = rank
        owned = sorted(descriptor.local_regions(rank), key=lambda r: r.lo)
        obj._base = np.zeros(sum(r.volume for r in owned),
                             dtype=descriptor.dtype)
        obj.patches = obj._bind_patches(owned)
        return obj

    @classmethod
    def from_global(cls, descriptor: DistArrayDescriptor, rank: int,
                    global_array: np.ndarray) -> "DistributedArray":
        """Local storage filled from a replicated global array."""
        descriptor.check_alignment(global_array.shape)
        if global_array.dtype != descriptor.dtype:
            global_array = global_array.astype(descriptor.dtype)
        # The constructor copies into the consolidated base buffer, so
        # passing slices (views) here never aliases the caller's array.
        patches = {
            region: global_array[region.to_slices()]
            for region in descriptor.local_regions(rank)
        }
        return cls(descriptor, rank, patches)

    @classmethod
    def from_function(cls, descriptor: DistArrayDescriptor, rank: int,
                      fn: Callable[..., np.ndarray]) -> "DistributedArray":
        """Fill patches from a vectorized function of global coordinates.

        ``fn`` receives one coordinate array per axis (from
        ``np.meshgrid`` with ``indexing='ij'``) and returns values.
        """
        patches = {}
        for region in descriptor.local_regions(rank):
            grids = np.meshgrid(
                *[np.arange(a, b) for a, b in zip(region.lo, region.hi)],
                indexing="ij")
            patches[region] = np.asarray(
                fn(*grids), dtype=descriptor.dtype).reshape(region.shape)
        return cls(descriptor, rank, patches)

    # -- element access -----------------------------------------------------

    def local_view(self, region: Region) -> np.ndarray:
        """View of ``region`` (global coordinates) inside local storage.

        ``region`` must lie entirely within one owned patch; this is the
        direct-memory-access path the paper calls "short-circuiting the
        DA package's interface" (§2.2.2).
        """
        for owned, arr in self.patches.items():
            if owned.contains(region):
                return region.view(arr, owned)
        raise DistributionError(
            f"region {region} not contained in any patch of rank {self.rank}")

    def get(self, point: Sequence[int]):
        """Read one element by global coordinates (must be owned)."""
        point = tuple(int(p) for p in point)
        for owned, arr in self.patches.items():
            if owned.contains_point(point):
                local = tuple(p - o for p, o in zip(point, owned.lo))
                return arr[local]
        raise DistributionError(
            f"element {point} not owned by rank {self.rank}")

    def set(self, point: Sequence[int], value) -> None:
        point = tuple(int(p) for p in point)
        for owned, arr in self.patches.items():
            if owned.contains_point(point):
                local = tuple(p - o for p, o in zip(point, owned.lo))
                arr[local] = value
                return
        raise DistributionError(
            f"element {point} not owned by rank {self.rank}")

    def fill(self, value) -> None:
        self._base.fill(value)

    def rebase(self, base: np.ndarray) -> None:
        """Move local storage into a caller-provided flat buffer.

        ``base`` must match the consolidated buffer's size and dtype;
        current contents are copied over and every patch view is rebound
        so subsequent reads and writes — including :meth:`flat_local`,
        which the compiled index plans address — go through ``base``.
        The one-sided execution tier uses this to home the destination
        array inside an RMA window's shared payload, so remote puts land
        directly in final storage.
        """
        base = np.asarray(base)
        if base.ndim != 1 or base.size != self._base.size:
            raise DistributionError(
                f"rebase buffer has shape {base.shape}, need a flat buffer "
                f"of {self._base.size} elements")
        if base.dtype != self._base.dtype:
            raise DistributionError(
                f"rebase buffer dtype {base.dtype} != array dtype "
                f"{self._base.dtype}")
        np.copyto(base, self._base)
        self._base = base
        self.patches = self._bind_patches(
            sorted(self.patches, key=lambda r: r.lo))

    def flat_local(self) -> np.ndarray:
        """The consolidated 1-D local buffer: owned patches sorted by
        ``region.lo``, each row-major.  A *view* — writes go straight
        through to the patches.  This is the address space of the
        compiled index plans (:mod:`repro.schedule.indexplan`)."""
        return self._base

    def adopt(self, source: "DistributedArray",
              descriptor: DistArrayDescriptor | None = None,
              ) -> "DistributedArray":
        """Atomically become ``source``: rebind this array's descriptor,
        consolidated base buffer and patch views to ``source``'s, while
        preserving *this* object's identity — the ownership-map swap of
        a live resize (:func:`repro.highlevel.reconfigure`).  Every
        handle the application holds keeps working and now sees the new
        decomposition; the rebind is a plain attribute swap, so under
        the resize protocol (all in-flight transfer steps drained by a
        barrier first) no reader can observe a mix of old and new
        state.  ``source is self`` swaps only the descriptor — the
        identity-rank fast path, whose buffer never moved."""
        if descriptor is None:
            descriptor = source.descriptor
        if source.rank != self.rank:
            raise DistributionError(
                f"cannot adopt rank {source.rank}'s storage into rank "
                f"{self.rank}")
        if descriptor.dtype != source._base.dtype:
            raise DistributionError(
                f"adopted descriptor dtype {descriptor.dtype} != storage "
                f"dtype {source._base.dtype}")
        self.descriptor = descriptor
        if source is not self:
            self._base = source._base
            self.patches = source.patches
        return self

    @property
    def local_volume(self) -> int:
        return self._base.size

    def iter_patches(self) -> Iterable[tuple[Region, np.ndarray]]:
        """Owned (region, storage) pairs in deterministic order."""
        return sorted(self.patches.items(), key=lambda kv: kv[0].lo)

    # -- global assembly (verification helper) -------------------------------

    def scatter_into(self, global_array: np.ndarray) -> None:
        """Write this rank's patches into a replicated global array."""
        self.descriptor.check_alignment(global_array.shape)
        for region, arr in self.patches.items():
            global_array[region.to_slices()] = arr

    @staticmethod
    def assemble(parts: Sequence["DistributedArray"]) -> np.ndarray:
        """Reassemble a full global array from every rank's piece."""
        if not parts:
            raise DistributionError("no parts to assemble")
        desc = parts[0].descriptor
        out = np.zeros(desc.shape, dtype=desc.dtype)
        for part in parts:
            part.scatter_into(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DistributedArray(rank={self.rank}, "
                f"{len(self.patches)} patches, {self.local_volume} elems)")
