"""DA-package interoperability: the 2N-converters-via-DAD argument.

Paper §2.2.2: a descriptor hub "allow[s] the use of 2N distinct
converters to/from the DAD's intermediate representation rather than
N² converters directly coupling individual DA representations".

This module models that trade-off concretely.  A *package* is a named
distributed-array representation (think Global Arrays vs. an HPF
runtime vs. a Chaos-style irregular library); a
:class:`ConverterRegistry` holds either direct pairwise converters or
per-package to/from-DAD converters and routes conversion requests,
counting registered converters and executed hops so experiment E12 can
regenerate the 2N-vs-N² comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RegistrationError
from repro.dad.descriptor import DistArrayDescriptor


@dataclass
class DARepresentation:
    """A distributed array described in some package's native format."""

    package: str
    payload: Any


Converter = Callable[[Any], Any]


class ConverterRegistry:
    """Routes DA-representation conversions directly or via the DAD hub."""

    def __init__(self) -> None:
        self._direct: dict[tuple[str, str], Converter] = {}
        self._to_dad: dict[str, Callable[[Any], DistArrayDescriptor]] = {}
        self._from_dad: dict[str, Callable[[DistArrayDescriptor], Any]] = {}
        self.hops_executed = 0

    # -- registration -------------------------------------------------------

    def register_direct(self, src: str, dst: str, fn: Converter) -> None:
        key = (src, dst)
        if key in self._direct:
            raise RegistrationError(f"direct converter {src}->{dst} exists")
        self._direct[key] = fn

    def register_package(self, package: str,
                         to_dad: Callable[[Any], DistArrayDescriptor],
                         from_dad: Callable[[DistArrayDescriptor], Any]) -> None:
        if package in self._to_dad:
            raise RegistrationError(f"package {package!r} already registered")
        self._to_dad[package] = to_dad
        self._from_dad[package] = from_dad

    # -- metrics --------------------------------------------------------------

    @property
    def direct_converter_count(self) -> int:
        return len(self._direct)

    @property
    def hub_converter_count(self) -> int:
        return len(self._to_dad) + len(self._from_dad)

    # -- conversion ----------------------------------------------------------

    def convert_direct(self, rep: DARepresentation,
                       dst: str) -> DARepresentation:
        """One-hop conversion using a pairwise converter."""
        if rep.package == dst:
            return rep
        try:
            fn = self._direct[(rep.package, dst)]
        except KeyError:
            raise RegistrationError(
                f"no direct converter {rep.package}->{dst}") from None
        self.hops_executed += 1
        return DARepresentation(dst, fn(rep.payload))

    def convert_via_dad(self, rep: DARepresentation,
                        dst: str) -> DARepresentation:
        """Two-hop conversion through the DAD intermediate form."""
        if rep.package == dst:
            return rep
        try:
            to_dad = self._to_dad[rep.package]
            from_dad = self._from_dad[dst]
        except KeyError as exc:
            raise RegistrationError(
                f"package not registered with the DAD hub: {exc}") from None
        self.hops_executed += 2
        return DARepresentation(dst, from_dad(to_dad(rep.payload)))

    def convert(self, rep: DARepresentation, dst: str) -> DARepresentation:
        """Prefer a direct converter; fall back to the DAD hub."""
        if rep.package == dst:
            return rep
        if (rep.package, dst) in self._direct:
            return self.convert_direct(rep, dst)
        return self.convert_via_dad(rep, dst)
