"""Pluggable execution backends: how a job's ranks exchange bytes.

The runtime supports two backends, selected per job at launch time
(``run_spmd(..., backend=...)`` / ``run_coupled(..., backend=...)`` or
the ``REPRO_BACKEND`` environment variable):

* ``"threads"`` — the historical backend: every rank is a thread of one
  process and a send is an in-process object handoff into the
  destination rank's :class:`~repro.simmpi.matching.Mailbox`.  Cheap to
  launch and fully deterministic, but packing, protocol work and
  scatters all serialize on the GIL.
* ``"procs"`` — every rank is a real ``multiprocessing`` process and
  message payloads travel through ``multiprocessing.shared_memory``
  slot rings (:mod:`repro.simmpi.shm` / :mod:`repro.simmpi.procs`), so
  the copy phases of a redistribution run truly concurrently.

Both backends implement the small :class:`Transport` contract this
module defines.  Everything above it — communicators, collectives,
intercommunicators, the persistent engines, :mod:`repro.highlevel` —
is backend-agnostic: it delivers through ``job.transport`` and never
touches mailboxes of other ranks directly.

The matching semantics (per-``(context, source, tag)`` FIFO, preposted
recv-into-destination slots, event-driven abort) live in
:class:`~repro.simmpi.matching.Mailbox` and are shared by both
backends: the procs backend runs one local mailbox per rank process
and a pump thread that replays remote deliveries into it.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional, Sequence

from repro.simmpi.matching import AbortFlag, Envelope, Mailbox

__all__ = [
    "Transport",
    "ThreadTransport",
    "resolve_backend",
    "current_runtime",
    "set_current_runtime",
]

#: Backends accepted by :func:`resolve_backend`.
BACKENDS = ("threads", "procs")


def resolve_backend(backend: Optional[str]) -> str:
    """Normalize a backend selection (explicit arg > env var > threads)."""
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "threads"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


class Transport:
    """Backend contract: deliver to any rank, receive on the local one.

    ``isolating`` tells :meth:`repro.simmpi.payload.wire_parts` whether
    plain array payloads need a defensive copy at send time.  The
    threads backend does (the handed-off object *is* the wire); the
    procs backend does not — writing the bytes into a shared slot is
    itself the isolating copy, so the defensive copy would be pure
    waste.
    """

    backend = "?"
    #: Whether plain payloads must be isolated before :meth:`deliver`.
    isolating = True
    #: Whether ranks can expose/attach shared-memory RMA windows
    #: (:mod:`repro.simmpi.rma`).  Only the procs backend can: its ranks
    #: are processes that attach each other's window segments by name.
    #: The persistent engines fall back to two-sided transparently when
    #: this is False.
    rma_capable = False

    def mailbox(self, job_rank: int) -> Mailbox:
        """The local mailbox of ``job_rank`` (receive side).

        Backends may only support the calling rank's own mailbox (the
        procs backend has no in-process view of its peers).
        """
        raise NotImplementedError

    def deliver(self, job_rank: int, env: Envelope, live=None) -> None:
        """Send ``env`` (with optional lent view ``live``) to a rank of
        this job.  Must consume ``live`` synchronously — no alias to the
        sender's storage may survive the call."""
        raise NotImplementedError


class ThreadTransport(Transport):
    """The threads backend: one in-process mailbox per rank."""

    backend = "threads"
    isolating = True
    rma_capable = False

    def __init__(self, n: int, abort: AbortFlag,
                 progress: Optional[Callable[[], None]] = None,
                 block_state: Optional[Callable[[int, str | None], None]] = None):
        self.mailboxes = [
            Mailbox(r, abort, progress=progress, block_state=block_state)
            for r in range(n)
        ]

    def mailbox(self, job_rank: int) -> Mailbox:
        return self.mailboxes[job_rank]

    def deliver(self, job_rank: int, env: Envelope, live=None) -> None:
        self.mailboxes[job_rank].deliver(env, live=live)


# -- procs-backend rank runtime registry -------------------------------------
#
# When a process is a rank of a procs-backend domain, the module-global
# runtime handle lets backend-aware code (NameService rendezvous, the
# benchmarks' stats collection) discover the domain without threading it
# through every call signature.  ``None`` everywhere else — including in
# the parent/supervisor process and in all threads-backend runs.

_current_runtime: Any = None


def current_runtime():
    """The :class:`repro.simmpi.procs.ProcRuntime` of this process, or
    ``None`` when this process is not a procs-backend rank."""
    return _current_runtime


def set_current_runtime(runtime) -> None:
    global _current_runtime
    _current_runtime = runtime


def current_endpoint():
    """Endpoint id of this rank process's runtime, or ``None`` outside
    one (threads backend, supervisor process).  The race sanitizer's
    single-writer attribution hook: :class:`~repro.simmpi.shm.
    SharedState` watchdog fields must only be written by the process
    owning the endpoint, and this is the identity that claim is checked
    against."""
    rt = _current_runtime
    return getattr(rt, "endpoint", None) if rt is not None else None


class RemoteGroup:
    """Delivery handle for the ranks of a *remote* job (intercomm target).

    The threads backend wraps the remote job object directly; the procs
    backend addresses global endpoint ids through the domain transport.
    """

    def deliver(self, idx: int, env: Envelope, live=None) -> None:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError


class JobRemoteGroup(RemoteGroup):
    """Threads-backend remote group: direct mailbox delivery."""

    def __init__(self, job, job_ranks: Sequence[int]):
        self.job = job
        self.job_ranks = tuple(job_ranks)

    def deliver(self, idx: int, env: Envelope, live=None) -> None:
        self.job.transport.deliver(self.job_ranks[idx], env, live=live)

    @property
    def size(self) -> int:
        return len(self.job_ranks)


class EndpointRemoteGroup(RemoteGroup):
    """Procs-backend remote group: global domain endpoints."""

    def __init__(self, transport, endpoints: Sequence[int]):
        self._transport = transport
        self.endpoints = tuple(endpoints)

    def deliver(self, idx: int, env: Envelope, live=None) -> None:
        self._transport.deliver_endpoint(self.endpoints[idx], env, live=live)

    @property
    def size(self) -> int:
        return len(self.endpoints)
