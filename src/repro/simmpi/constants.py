"""Wildcard constants for message matching, and the tag-space map.

The tag space is partitioned so the three protocol families sharing one
mailbox can never collide:

* ``[0, FRAME_TAG_BASE)`` — application point-to-point tags (including
  the PRMI per-message tags 100–106),
* ``[FRAME_TAG_BASE, INTERNAL_TAG_BASE)`` — framed (coalesced) protocol
  streams: each stream id maps to one tag via :func:`frame_tag`, so a
  batch frame, its return frame, and control traffic ride distinct
  FIFO-ordered (source, tag) streams without reserving application tags,
* ``[INTERNAL_TAG_BASE, ∞)`` — collective-internal sequence tags.
"""

#: Match a message from any source rank.
ANY_SOURCE: int = -1

#: Match a message with any tag.
ANY_TAG: int = -1

#: Tags >= this value are reserved for internal collective protocols.
INTERNAL_TAG_BASE: int = 1 << 28

#: Base of the framed-protocol tag band (batched PRMI serving streams).
FRAME_TAG_BASE: int = 1 << 20


def frame_tag(stream: int) -> int:
    """The wire tag of framed-protocol stream ``stream``.

    Streams partition the ``[FRAME_TAG_BASE, INTERNAL_TAG_BASE)`` band;
    together with the source rank this names one FIFO-ordered message
    stream per (peer, stream) pair.
    """
    tag = FRAME_TAG_BASE + int(stream)
    if not (FRAME_TAG_BASE <= tag < INTERNAL_TAG_BASE):
        raise ValueError(
            f"frame stream {stream} falls outside the framed tag band "
            f"[{FRAME_TAG_BASE}, {INTERNAL_TAG_BASE})")
    return tag
