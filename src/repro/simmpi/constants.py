"""Wildcard constants for message matching."""

#: Match a message from any source rank.
ANY_SOURCE: int = -1

#: Match a message with any tag.
ANY_TAG: int = -1

#: Tags >= this value are reserved for internal collective protocols.
INTERNAL_TAG_BASE: int = 1 << 28
