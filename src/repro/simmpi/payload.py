"""Message payload handling: copy-on-send value semantics and byte counts.

A real MPI transfer serializes the data onto a wire; sharing a mutable
object between sender and receiver would hide bugs that real deployments
hit.  NumPy arrays take the fast path (a C-level copy, mirroring mpi4py's
buffer protocol path); everything else is pickled, which both isolates
the object graph and yields an honest byte count.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np


class Raw:
    """Marker wrapper: pass the value through without copy or pickling.

    Reserved for runtime-internal handles (e.g. the job references shipped
    during an intercommunicator handshake) that are process-local by
    design and must never cross a real wire.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


def pack(obj: Any) -> tuple[Any, int]:
    """Return an isolated copy of ``obj`` and its size in bytes."""
    if isinstance(obj, Raw):
        return obj.value, 0
    if isinstance(obj, np.ndarray):
        copy = np.ascontiguousarray(obj)
        if copy is obj:
            copy = obj.copy()
        return copy, copy.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return bytes(obj), len(obj)
    if obj is None or isinstance(obj, (bool, int, float, complex, str)):
        # Immutable scalars need no copy; charge a nominal header size.
        return obj, 8 if not isinstance(obj, str) else len(obj.encode())
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.loads(blob), len(blob)
