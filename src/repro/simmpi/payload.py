"""Message payload handling: value, move, and borrow semantics on send.

A real MPI transfer serializes the data onto a wire; sharing a mutable
object between sender and receiver would hide bugs that real deployments
hit.  The default path therefore keeps **value semantics**: NumPy arrays
take a C-level defensive copy (mirroring mpi4py's buffer protocol path)
and everything else is pickled, which both isolates the object graph and
yields an honest byte count.

The zero-copy transport adds two ownership-transfer markers that skip
the defensive copy where it is provably redundant:

* :class:`OwnedBuffer` — **move semantics**.  The sender hands the
  runtime a buffer it promises never to touch again (a freshly gathered
  pack buffer, a pooled staging buffer, ...).  The buffer itself becomes
  the wire payload — zero copies on send.  An optional ``release``
  callback travels with it so pooled buffers return to their pool the
  moment the receiver consumes them.  With ``REPRO_TRANSPORT_DEBUG``
  set (or :func:`set_transport_debug`), the wire gets a copy and the
  moved original is *poisoned* with a recognizable byte pattern, so a
  sender that breaks the promise and reads or reuses the moved buffer
  is caught immediately (:func:`is_poisoned`).

* :class:`Borrowed` — **borrow semantics**.  The sender lends a live
  view (e.g. a contiguous or strided slice of its local storage) that
  the transport consumes *synchronously inside the send call*: either
  the bytes are written directly into a preposted destination buffer
  (see :meth:`repro.simmpi.matching.Mailbox.prepost`) or they are
  snapshotted into a fresh buffer before the send returns.  Either way
  no alias to the sender's storage survives the send, so value
  semantics are preserved while the common persistent-channel case
  collapses to a single copy per byte.

All paths account their work in
:data:`repro.util.counters.TRANSPORT_STATS` (``bytes_copied``,
``alloc_bytes``, ``moved_bytes``, ``direct_deliveries``, ...), which is
what the A7 steady-state benchmark and the CI copies-per-byte gate read.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, Optional

import numpy as np

from repro.util.counters import TRANSPORT_STATS

#: Byte written over every element of a moved buffer in debug mode.
POISON_BYTE = 0xCB

_transport_debug = os.environ.get("REPRO_TRANSPORT_DEBUG", "") not in ("", "0")


def set_transport_debug(on: bool) -> None:
    """Enable/disable poison-on-move (overrides ``REPRO_TRANSPORT_DEBUG``)."""
    global _transport_debug
    _transport_debug = bool(on)


def transport_debug() -> bool:
    return _transport_debug


class Raw:
    """Marker wrapper: pass the value through without copy or pickling.

    Reserved for runtime-internal handles (e.g. the job references shipped
    during an intercommunicator handshake) that are process-local by
    design and must never cross a real wire.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


class PickledWire:
    """Internal wire marker: an object already serialized for transport.

    Produced by :func:`wire_parts` on non-isolating backends (procs),
    where pickling *is* the isolation step and the bytes go straight
    into a shared slot — deserializing in the sender process just to
    re-serialize in the queue would double the work.  Local deliveries
    rehydrate with one ``pickle.loads``.
    """

    __slots__ = ("blob",)

    def __init__(self, blob: bytes):
        self.blob = blob


class OwnedBuffer:
    """Move-semantics marker: the runtime takes ownership of ``value``.

    The wrapped array must be C-contiguous (it *is* the wire buffer) and
    the sender must not read or write it after the send.  ``release``,
    if given, is invoked exactly once when the transport is done with
    the buffer (direct delivery into a preposted destination) — the
    loan-return hook :class:`repro.schedule.bufpool.BufferPool` uses to
    recycle pack buffers with zero steady-state allocation.
    """

    __slots__ = ("value", "release")

    def __init__(self, value: np.ndarray,
                 release: Optional[Callable[[], None]] = None):
        value = np.asarray(value)
        if not value.flags.c_contiguous:
            raise ValueError(
                "OwnedBuffer requires a C-contiguous array (it becomes the "
                "wire buffer itself); gather into a contiguous staging "
                "buffer first")
        self.value = value
        self.release = release


class Borrowed:
    """Borrow-semantics marker: lend a live array view for one send.

    The transport reads ``value`` only during the send call itself —
    writing it straight into a preposted destination when one is armed,
    snapshotting it otherwise — so the sender may freely mutate the
    underlying storage afterwards.  Non-contiguous (e.g. strided) views
    are fine; that is the point.
    """

    __slots__ = ("value",)

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value)


def poison(arr: np.ndarray) -> None:
    """Overwrite ``arr`` with the :data:`POISON_BYTE` pattern in place."""
    arr.reshape(-1).view(np.uint8)[:] = POISON_BYTE


def is_poisoned(arr: np.ndarray) -> bool:
    """True when every byte of ``arr`` carries the poison pattern (and
    the array is non-empty) — the debug-mode tripwire for use-after-move."""
    arr = np.ascontiguousarray(arr)
    flat = arr.reshape(-1).view(np.uint8)
    return flat.size > 0 and bool((flat == POISON_BYTE).all())


def snapshot(arr: np.ndarray) -> np.ndarray:
    """Contiguous isolated copy of a borrowed view (counted)."""
    copy = np.array(arr, order="C", copy=True)
    TRANSPORT_STATS.add("bytes_copied", copy.nbytes)
    TRANSPORT_STATS.add("alloc_bytes", copy.nbytes)
    TRANSPORT_STATS.add("borrow_snapshots")
    return copy


def pack(obj: Any) -> tuple[Any, int]:
    """Return an isolated copy of ``obj`` and its size in bytes."""
    if isinstance(obj, Raw):
        return obj.value, 0
    if isinstance(obj, OwnedBuffer):
        arr = obj.value
        if _transport_debug:
            wire = arr.copy()
            TRANSPORT_STATS.add("bytes_copied", wire.nbytes)
            TRANSPORT_STATS.add("alloc_bytes", wire.nbytes)
            poison(arr)
        else:
            wire = arr
        TRANSPORT_STATS.add("moved_buffers")
        TRANSPORT_STATS.add("moved_bytes", wire.nbytes)
        return wire, wire.nbytes
    if isinstance(obj, Borrowed):
        # pack() has no preposted destination to hand the view to, so a
        # borrow degrades gracefully to a snapshot here; the mailbox
        # transport (wire_parts + Mailbox.deliver) is the zero-copy path.
        copy = snapshot(obj.value)
        return copy, copy.nbytes
    if isinstance(obj, np.ndarray):
        copy = np.ascontiguousarray(obj)
        if copy is obj:
            copy = obj.copy()
        TRANSPORT_STATS.add("bytes_copied", copy.nbytes)
        TRANSPORT_STATS.add("alloc_bytes", copy.nbytes)
        return copy, copy.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return bytes(obj), len(obj)
    if obj is None or isinstance(obj, (bool, int, float, complex, str)):
        # Immutable scalars need no copy; charge a nominal header size.
        return obj, 8 if not isinstance(obj, str) else len(obj.encode())
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.loads(blob), len(blob)


def wire_parts(obj: Any, *, isolate: bool = True
               ) -> tuple[Any, int, Optional[Callable[[], None]],
                          Optional[np.ndarray]]:
    """Decompose ``obj`` for the mailbox transport.

    Returns ``(data, nbytes, release, live)``:

    * plain objects — ``data`` is the isolated :func:`pack` copy;
    * :class:`OwnedBuffer` — ``data`` is the moved buffer itself and
      ``release`` its loan-return callback;
    * :class:`Borrowed` — ``data`` is ``None`` and ``live`` the lent
      view; the mailbox must consume ``live`` synchronously (direct
      write into a preposted destination, else snapshot) before the
      send returns.

    ``isolate=False`` is for backends whose delivery step is itself an
    isolating copy (``Transport.isolating == False``, i.e. the procs
    backend writing bytes into a shared slot): plain arrays are handed
    over as lent ``live`` views with no defensive copy, and generic
    objects are pickled exactly once into a :class:`PickledWire`.
    """
    if isinstance(obj, Borrowed):
        return None, obj.value.nbytes, None, obj.value
    if isinstance(obj, OwnedBuffer):
        data, nbytes = pack(obj)
        return data, nbytes, obj.release, None
    if not isolate:
        if isinstance(obj, np.ndarray):
            # the transport's slot write is the isolation copy
            return None, obj.nbytes, None, np.asarray(obj)
        if isinstance(obj, Raw):
            return obj, 0, None, None
        if isinstance(obj, (bytes, bytearray)):
            return bytes(obj), len(obj), None, None
        if obj is None or isinstance(obj, (bool, int, float, complex, str)):
            nbytes = 8 if not isinstance(obj, str) else len(obj.encode())
            return obj, nbytes, None, None
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return PickledWire(blob), len(blob), None, None
    data, nbytes = pack(obj)
    return data, nbytes, None, None
