"""Intra-job communicators: tagged point-to-point plus collectives.

A :class:`Communicator` spans a subset of a job's ranks.  Messages are
matched on a per-communicator context id, so overlapping communicators
(e.g. those produced by :meth:`Communicator.split`) never interfere —
the property DCA relies on to scope process participation (paper §4.3).

Collectives are implemented over point-to-point with internal tags.  A
per-rank collective sequence counter keeps internal tags aligned, which
is sound under the usual MPI rule that all ranks of a communicator call
collectives in the same order.

``barrier``/``bcast``/``gather`` (and through them ``allgather``,
``reduce``, ``allreduce``, ``scan``, ``dup``, ``split``) run binomial
log-P tree algorithms by default: the total message count is identical
to the historical flat loops (P-1 per rooted collective, 2(P-1) per
barrier), but the critical path shrinks from O(P) serialized sends at
the root to O(log P) levels, which is what the coupling benchmarks and
the DCA engine sit on top of.  Set :attr:`Communicator.coll_algo` to
``"flat"`` (consistently on every rank) to restore the flat loops —
kept for the tree-vs-flat equivalence tests and benchmarks.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence, TYPE_CHECKING

import numpy as np

from repro.errors import CommunicatorError
from repro.simmpi import payload
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG, INTERNAL_TAG_BASE
from repro.simmpi.matching import Envelope, Mailbox
from repro.simmpi.ops import resolve_op
from repro.simmpi.request import Request
from repro.simmpi.status import Status

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simmpi.runner import Job

# Global context-id allocator: unique across all jobs in the process so
# intercommunicators bridging two jobs can never collide.
_context_lock = threading.Lock()
_next_context = 1


def allocate_context() -> int:
    global _next_context
    with _context_lock:
        cid = _next_context
        _next_context += 1
        return cid


class _TreeRaw:
    """Marker carrying a ``payload.Raw`` value down the bcast tree.

    Lets intermediate ranks recognize that the value they are relaying
    is a process-local handle and must be re-wrapped in ``Raw`` (zero
    copy, never pickled) before forwarding to their children.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


class Communicator:
    """An ordered group of ranks with isolated message context."""

    #: Collective algorithm: "tree" (binomial, log-P critical path) or
    #: "flat" (the historical root-serialized loops).  Every rank of a
    #: communicator must use the same value.
    coll_algo = "tree"

    def __init__(self, job: "Job", context: int, rank: int,
                 job_ranks: Sequence[int]):
        self.job = job
        self.context = context
        self._rank = rank
        #: communicator rank -> job rank
        self.job_ranks = tuple(job_ranks)
        self._coll_seq = 0

    # -- identity -----------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self.job_ranks)

    @property
    def counters(self):
        """The owning job's instrumentation counters."""
        return self.job.counters

    def _mailbox(self, comm_rank: int) -> Mailbox:
        # receive-side only: backends may restrict this to the calling
        # rank's own mailbox (the procs backend has no in-process peers)
        return self.job.transport.mailbox(self.job_ranks[comm_rank])

    def _check_rank(self, r: int, what: str) -> None:
        if not (0 <= r < self.size):
            raise CommunicatorError(
                f"{what} rank {r} out of range for size-{self.size} communicator")

    # -- point-to-point ------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send: isolates ``obj`` and returns immediately.

        Plain payloads are copied (value semantics);
        :class:`~repro.simmpi.payload.OwnedBuffer` moves and
        :class:`~repro.simmpi.payload.Borrowed` lends — see
        :mod:`repro.simmpi.payload` for the ownership contract.
        """
        self._check_rank(dest, "destination")
        transport = self.job.transport
        data, nbytes, release, live = payload.wire_parts(
            obj, isolate=transport.isolating)
        # Collective-internal protocol traffic is counted separately so
        # benchmarks can report application data movement alone.
        kind = "internal_msgs" if tag >= INTERNAL_TAG_BASE else "msgs"
        self.job.counters.add(kind)
        self.job.counters.add("bytes", nbytes)
        self.job.counters.add(f"rank{self.job_ranks[dest]}.rx_bytes", nbytes)
        transport.deliver(
            self.job_ranks[dest],
            Envelope(self.context, self._rank, tag, data, nbytes,
                     release=release),
            live=live)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             *, timeout: float | None = None,
             return_status: bool = False) -> Any:
        """Blocking receive; returns the payload (and optionally a Status)."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        env = self._mailbox(self._rank).wait_match(
            self.context, source, tag, timeout=timeout)
        if return_status:
            return env.payload, Status(env.source, env.tag, env.nbytes)
        return env.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (completes immediately: sends are buffered)."""
        self.send(obj, dest, tag)
        return Request(value=None, status=None)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; the match happens at ``wait`` time."""
        def completer(timeout: float | None) -> tuple[Any, Status]:
            env = self._mailbox(self._rank).wait_match(
                self.context, source, tag, timeout=timeout)
            return env.payload, Status(env.source, env.tag, env.nbytes)
        return Request(completer)

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive (deadlock-free because sends buffer)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Non-destructive test for a matching message."""
        env = self._mailbox(self._rank).probe(self.context, source, tag)
        if env is None:
            return None
        return Status(env.source, env.tag, env.nbytes)

    def prepost_recv(self, sink: Callable[[Any], int],
                     source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Arm a preposted receive (MPI_Recv_init analogue): a matching
        send writes its payload straight through ``sink`` with no
        staging buffer.  Returns the
        :class:`~repro.simmpi.matching.PrepostSlot`; complete it with
        ``slot.wait()``."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        return self._mailbox(self._rank).prepost(
            self.context, source, tag, sink)

    # -- collectives -----------------------------------------------------------

    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return INTERNAL_TAG_BASE + (self._coll_seq & 0xFFFFF)

    def barrier(self) -> None:
        """Barrier: binomial reduce-to-0 then binomial release (log-P
        depth); "flat" mode gathers a token at rank 0 and releases."""
        tag = self._next_coll_tag()
        self.job.counters.add("barriers")
        if self.size == 1:
            return
        if self.coll_algo == "flat":
            if self._rank == 0:
                for _ in range(self.size - 1):
                    self.recv(ANY_SOURCE, tag)
                for r in range(1, self.size):
                    self.send(None, r, tag)
            else:
                self.send(None, 0, tag)
                self.recv(0, tag)
            return
        size, vrank = self.size, self._rank
        # Arrival phase: wait for each subtree, then notify the parent.
        mask = 1
        while mask < size:
            if vrank & mask:
                self.send(None, vrank - mask, tag)
                break
            child = vrank | mask
            if child < size:
                self.recv(child, tag)
            mask <<= 1
        # Release phase: the bcast tree in reverse direction.
        self._tree_bcast_value(None, 0, tag)

    def _tree_children(self, vrank: int, size: int) -> list[int]:
        """Children of ``vrank`` in a binomial tree over [0, size),
        highest subtree first (the order the bcast wave descends)."""
        mask = 1
        while mask < size and not (vrank & mask):
            mask <<= 1
        children = []
        mask >>= 1
        while mask:
            child = vrank | mask
            if child < size and child != vrank:
                children.append(child)
            mask >>= 1
        return children

    def _tree_bcast_value(self, obj: Any, root: int, tag: int) -> Any:
        """Binomial broadcast of ``obj`` from ``root`` using ``tag``;
        returns the value on every rank (the root's own object as-is).

        :class:`~repro.simmpi.payload.Raw`-wrapped payloads (process-
        local handles that must never be pickled) stay zero-copy across
        *every* hop: the value travels inside a :class:`_TreeRaw` marker
        that each intermediate rank re-wraps in ``Raw`` before
        forwarding, mirroring what the single-hop flat loop did.
        """
        size = self.size
        vrank = (self._rank - root) % size
        if vrank == 0:
            if isinstance(obj, payload.Raw):
                wire: Any = payload.Raw(_TreeRaw(obj.value))
            else:
                wire = obj
            value = obj
        else:
            # Parent: vrank with its lowest set bit cleared.
            parent_v = vrank - (vrank & -vrank)
            got = self.recv((parent_v + root) % size, tag)
            if isinstance(got, _TreeRaw):
                wire = payload.Raw(got)
                value = got.value
            else:
                wire = got
                value = got
        for child_v in self._tree_children(vrank, size):
            self.send(wire, (child_v + root) % size, tag)
        return value

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        if self.size == 1:
            return obj
        if self.coll_algo == "flat":
            if self._rank == root:
                for r in range(self.size):
                    if r != root:
                        self.send(obj, r, tag)
                return obj
            return self.recv(root, tag)
        return self._tree_bcast_value(obj, root, tag)

    def scatter(self, seq: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one element of ``seq`` (length ``size``, root only) to
        each rank."""
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        if self._rank == root:
            if seq is None or len(seq) != self.size:
                raise CommunicatorError(
                    f"scatter at root needs a length-{self.size} sequence")
            for r in range(self.size):
                if r != root:
                    self.send(seq[r], r, tag)
            mine, _ = payload.pack(seq[root])
            return mine
        return self.recv(root, tag)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank to ``root`` (others return None).

        Tree mode merges subtree contributions up a binomial tree: the
        same P-1 messages as the flat loop, but the root receives log P
        aggregated messages instead of P-1 serialized ones.
        """
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        if self.coll_algo == "flat":
            if self._rank == root:
                out: list[Any] = [None] * self.size
                mine, _ = payload.pack(obj)
                out[root] = mine
                for _ in range(self.size - 1):
                    val, st = self.recv(ANY_SOURCE, tag, return_status=True)
                    out[st.source] = val
                return out
            self.send(obj, root, tag)
            return None
        size = self.size
        vrank = (self._rank - root) % size
        mine, _ = payload.pack(obj)
        acc: dict[int, Any] = {vrank: mine}
        mask = 1
        while mask < size:
            if vrank & mask:
                # Hand the whole subtree to the parent and stop.
                self.send(acc, ((vrank - mask) + root) % size, tag)
                return None
            child = vrank | mask
            if child < size:
                acc.update(self.recv((child + root) % size, tag))
            mask <<= 1
        return [acc[(r - root) % size] for r in range(size)]

    def allgather(self, obj: Any) -> list[Any]:
        """Gather then broadcast: every rank returns the full list."""
        rooted = self.gather(obj, root=0)
        return self.bcast(rooted, root=0)

    def alltoall(self, seq: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: rank i sends ``seq[j]`` to rank j."""
        if len(seq) != self.size:
            raise CommunicatorError(
                f"alltoall needs a length-{self.size} sequence per rank")
        tag = self._next_coll_tag()
        for r in range(self.size):
            if r != self._rank:
                self.send(seq[r], r, tag)
        out: list[Any] = [None] * self.size
        out[self._rank], _ = payload.pack(seq[self._rank])
        for _ in range(self.size - 1):
            val, st = self.recv(ANY_SOURCE, tag, return_status=True)
            out[st.source] = val
        return out

    def alltoallv(self, sendbuf: np.ndarray, sendcounts: Sequence[int],
                  sdispls: Sequence[int] | None = None,
                  recvcounts: Sequence[int] | None = None) -> np.ndarray:
        """MPI_Alltoallv over a 1-D NumPy buffer.

        ``sendbuf[sdispls[j]:sdispls[j]+sendcounts[j]]`` goes to rank j.
        When ``recvcounts`` is None the counts are exchanged first (an
        extra alltoall), mirroring how DCA's stubs operate (paper §4.3);
        supplying statically known counts (the collective round planner
        does) skips that exchange entirely.  Returns the concatenated
        received buffer, ordered by source rank.

        Zero-count segments exchange **no message** in either direction
        (MPI semantics: an empty segment is not a transfer), so sparse
        communication patterns cost messages proportional to their
        nonzero pairs, and a 1-rank world moves no messages at all.
        ``sendbuf`` may be any 1-D view — non-contiguous (strided)
        segments are canonicalized before hitting the wire.
        """
        sendbuf = np.asarray(sendbuf)
        if sendbuf.ndim != 1:
            raise CommunicatorError("alltoallv sendbuf must be 1-D")
        if len(sendcounts) != self.size:
            raise CommunicatorError(
                f"alltoallv needs {self.size} sendcounts, got {len(sendcounts)}")
        if any(c < 0 for c in sendcounts):
            raise CommunicatorError("alltoallv sendcounts must be >= 0")
        if sdispls is None:
            sdispls = np.concatenate(([0], np.cumsum(sendcounts)[:-1])).tolist()
        elif len(sdispls) != self.size:
            raise CommunicatorError(
                f"alltoallv needs {self.size} sdispls, got {len(sdispls)}")
        for r in range(self.size):
            if sdispls[r] + sendcounts[r] > sendbuf.shape[0]:
                raise CommunicatorError(
                    f"alltoallv: segment for rank {r} "
                    f"([{sdispls[r]}, {sdispls[r] + sendcounts[r]})) "
                    f"overruns sendbuf of size {sendbuf.shape[0]}")
        if recvcounts is None:
            recvcounts = self.alltoall(list(sendcounts))
        elif len(recvcounts) != self.size:
            raise CommunicatorError(
                f"alltoallv needs {self.size} recvcounts, got {len(recvcounts)}")
        tag = self._next_coll_tag()
        for r in range(self.size):
            if r != self._rank and sendcounts[r]:
                chunk = sendbuf[sdispls[r]:sdispls[r] + sendcounts[r]]
                # Canonicalize strided views: the wire carries (and the
                # receiver concatenates) contiguous buffers.
                self.send(np.ascontiguousarray(chunk), r, tag)
        empty = sendbuf[:0].copy()
        parts: list[np.ndarray] = [empty] * self.size
        own = sendbuf[sdispls[self._rank]:
                      sdispls[self._rank] + sendcounts[self._rank]]
        if own.shape[0]:
            parts[self._rank] = own.copy()
        for r in range(self.size):
            if r != self._rank and recvcounts[r]:
                parts[r] = np.asarray(self.recv(r, tag))
        for r, (p, c) in enumerate(zip(parts, recvcounts)):
            if p.shape[0] != c:
                raise CommunicatorError(
                    f"alltoallv: expected {c} items from rank {r}, got {p.shape[0]}")
        return np.concatenate(parts) if parts else empty

    def reduce(self, obj: Any, op: str | Callable[[Any, Any], Any] = "sum",
               root: int = 0) -> Any:
        """Reduce values to ``root`` (others return None)."""
        fn = resolve_op(op)
        vals = self.gather(obj, root=root)
        if self._rank != root:
            return None
        assert vals is not None
        acc = vals[0]
        for v in vals[1:]:
            acc = fn(acc, v)
        return acc

    def allreduce(self, obj: Any, op: str | Callable[[Any, Any], Any] = "sum") -> Any:
        """Reduce then broadcast."""
        res = self.reduce(obj, op=op, root=0)
        return self.bcast(res, root=0)

    def scan(self, obj: Any, op: str | Callable[[Any, Any], Any] = "sum") -> Any:
        """Inclusive prefix reduction: rank i returns op over ranks 0..i."""
        fn = resolve_op(op)
        vals = self.allgather(obj)
        acc = vals[0]
        for v in vals[1:self._rank + 1]:
            acc = fn(acc, v)
        return acc

    # -- communicator construction --------------------------------------------

    def dup(self) -> "Communicator":
        """A new communicator over the same ranks with a fresh context."""
        ctx = self.bcast(allocate_context() if self._rank == 0 else None, root=0)
        return Communicator(self.job, ctx, self._rank, self.job_ranks)

    def split(self, color: int, key: int = 0) -> "Communicator | None":
        """MPI_Comm_split: group ranks by ``color``, order by ``key``.

        ``color < 0`` means "not participating" (returns None).
        """
        info = self.allgather((color, key, self._rank))
        if self._rank == 0:
            colors = sorted({c for c, _, _ in info if c >= 0})
            contexts = {c: allocate_context() for c in colors}
        else:
            contexts = None
        contexts = self.bcast(contexts, root=0)
        if color < 0:
            return None
        members = sorted(
            ((k, r) for c, k, r in info if c == color),
            key=lambda t: (t[0], t[1]),
        )
        new_ranks = [r for _, r in members]
        my_new_rank = new_ranks.index(self._rank)
        job_ranks = [self.job_ranks[r] for r in new_ranks]
        return Communicator(self.job, contexts[color], my_new_rank, job_ranks)

    def create_subcomm(self, ranks: Sequence[int]) -> "Communicator | None":
        """Collective: build a communicator over ``ranks`` of this one.

        Every rank of the parent must call it with the same ``ranks``;
        ranks outside the list get None.
        """
        ranks = list(ranks)
        in_group = self._rank in ranks
        return self.split(0 if in_group else -1,
                          key=ranks.index(self._rank) if in_group else 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Communicator(rank={self._rank}/{self.size}, "
                f"context={self.context})")
