"""Reduction operators for reduce/allreduce/scan.

Operators work elementwise on NumPy arrays and directly on scalars.
They are looked up by name so method interfaces (and serialized PRMI
calls) can carry them as strings.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import CommunicatorError


def _sum(a: Any, b: Any) -> Any:
    return a + b


def _prod(a: Any, b: Any) -> Any:
    return a * b


def _max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _land(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_and(a, b)
    return bool(a) and bool(b)


def _lor(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_or(a, b)
    return bool(a) or bool(b)


OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": _sum,
    "prod": _prod,
    "max": _max,
    "min": _min,
    "land": _land,
    "lor": _lor,
}


def resolve_op(op: str | Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """Turn an operator name or callable into a binary callable."""
    if callable(op):
        return op
    try:
        return OPS[op]
    except KeyError:
        raise CommunicatorError(
            f"unknown reduction op {op!r}; expected one of {sorted(OPS)}"
        ) from None
