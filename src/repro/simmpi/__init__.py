"""simmpi — a simulated MPI runtime (ranks as threads).

This package is the out-of-band transport substrate the paper assumes
(Section 2.1: cohort-internal communication "out-of-band from the CCA
framework (e.g. using MPI)").  It provides the MPI subset the M×N
middleware needs:

* SPMD job launch (:class:`SpmdRunner`) with per-rank exception capture
  and a deadlock watchdog,
* communicators with tagged point-to-point messaging (blocking and
  nonblocking, ``ANY_SOURCE``/``ANY_TAG`` matching),
* the collective set used by the paper's systems: barrier, bcast,
  scatter(v), gather(v), allgather(v), alltoall(v), reduce, allreduce,
  scan,
* groups, ``split``/``dup``, and intercommunicators established through
  an in-memory name service (MPI ``Connect``/``Accept`` analogue) so two
  independently launched "parallel programs" can couple — the M×N case.

Semantics notes: sends are buffered (a send never blocks), receives
block; message payloads are copied at send time (value semantics, like a
real wire).  Every communicator counts messages, bytes and barriers for
the benchmark harness.

Ranks execute on a pluggable backend (``backend=`` on
:func:`run_spmd`/:func:`run_coupled`, or ``REPRO_BACKEND``):
``"threads"`` — the historical in-process default — or ``"procs"`` —
one forked process per rank with payloads in shared-memory slot rings,
so redistribution throughput scales with cores
(:mod:`repro.simmpi.transport`, :mod:`repro.simmpi.procs`).
"""

from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.status import Status
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator, NameService
from repro.simmpi.runner import SpmdRunner, run_spmd, run_coupled
from repro.simmpi.transport import BACKENDS, resolve_backend

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BACKENDS",
    "Status",
    "Communicator",
    "Intercommunicator",
    "NameService",
    "SpmdRunner",
    "resolve_backend",
    "run_spmd",
    "run_coupled",
]
