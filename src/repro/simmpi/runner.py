"""SPMD job launch: ranks as threads, with a deadlock watchdog.

:func:`run_spmd` is the ``mpiexec`` analogue: it runs ``fn(comm, *args)``
on ``n`` ranks and returns the per-rank return values.  Exceptions on any
rank abort the job and are re-raised as :class:`~repro.errors.SpmdError`
with the full per-rank failure map.

The watchdog implements the guarantee DESIGN.md promises: a test that
deadlocks raises :class:`~repro.errors.DeadlockError` with a dump of what
every blocked rank was waiting for, instead of hanging the suite.  The
heuristic is exact for this runtime: sends never block, so the job is
deadlocked precisely when every unfinished rank is blocked in a receive
and no message has been delivered since.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.errors import DeadlockError, SpmdError
from repro.simmpi.communicator import Communicator, allocate_context
from repro.simmpi.matching import AbortFlag, Mailbox
from repro.util.counters import Counters


class Job:
    """Shared state of one running SPMD job."""

    def __init__(self, n: int, *, name: str = "job"):
        if n < 1:
            raise ValueError(f"job needs at least 1 rank, got {n}")
        self.name = name
        self.n = n
        self.abort = AbortFlag()
        self.counters = Counters()
        self._progress = 0
        self._progress_lock = threading.Lock()
        self._blocked: dict[int, Optional[str]] = {}
        self._finished: set[int] = set()
        self._state_lock = threading.Lock()
        self.mailboxes = [
            Mailbox(r, self.abort, progress=self._bump,
                    block_state=self._set_block_state)
            for r in range(n)
        ]

    # -- watchdog inputs ------------------------------------------------

    def _bump(self) -> None:
        with self._progress_lock:
            self._progress += 1

    def progress(self) -> int:
        with self._progress_lock:
            return self._progress

    def _set_block_state(self, rank: int, desc: Optional[str]) -> None:
        with self._state_lock:
            if desc is None:
                self._blocked.pop(rank, None)
            else:
                self._blocked[rank] = desc

    def mark_finished(self, rank: int) -> None:
        with self._state_lock:
            self._finished.add(rank)

    def stalled(self) -> Optional[dict[int, str]]:
        """If no unfinished rank is runnable, return the block dump.

        Returns an empty dict when all ranks finished (the job cannot
        unblock anyone else, but is not itself stuck) and ``None`` while
        at least one rank is runnable.
        """
        with self._state_lock:
            unfinished = set(range(self.n)) - self._finished
            if unfinished <= set(self._blocked):
                return {r: self._blocked[r] or "?" for r in sorted(unfinished)}
            return None

    def world(self, rank: int, context: int) -> Communicator:
        return Communicator(self, context, rank, tuple(range(self.n)))


class SpmdRunner:
    """Launches and supervises one SPMD job.

    Parameters
    ----------
    n:
        Number of ranks.
    deadlock_timeout:
        Seconds of global stall (all unfinished ranks blocked in receives,
        no deliveries) before the watchdog aborts the job.
    """

    def __init__(self, n: int, *, name: str = "job",
                 deadlock_timeout: float = 5.0):
        self.job = Job(n, name=name)
        self.deadlock_timeout = deadlock_timeout
        self._world_context = allocate_context()
        self._results: dict[int, Any] = {}
        self._failures: dict[int, BaseException] = {}
        self._threads: list[threading.Thread] = []

    def _rank_main(self, rank: int, fn: Callable[..., Any],
                   args: tuple, kwargs: dict) -> None:
        comm = self.job.world(rank, self._world_context)
        try:
            self._results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported via SpmdError
            self._failures[rank] = exc
            # Unblock everyone else: a crashed rank will never send the
            # messages its peers are waiting for.
            self.job.abort.set(
                f"rank {rank} raised {type(exc).__name__}: {exc}",
                blocked={},
            )
        finally:
            self.job.mark_finished(rank)

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank; return values
        ordered by rank."""
        self._threads = [
            threading.Thread(
                target=self._rank_main, args=(r, fn, args, kwargs),
                name=f"{self.job.name}-rank{r}", daemon=True)
            for r in range(self.job.n)
        ]
        for t in self._threads:
            t.start()
        self._supervise([self.job])
        return self._finish()

    # -- supervision ------------------------------------------------------

    def _supervise(self, jobs: Sequence[Job]) -> None:
        """Watchdog loop shared by single and coupled runs."""
        stall_since: Optional[float] = None
        stall_progress = -1
        while any(t.is_alive() for t in self._threads):
            time.sleep(0.02)
            progress = sum(j.progress() for j in jobs)
            dumps = [j.stalled() for j in jobs]
            if all(d is not None for d in dumps) and any(dumps):
                if stall_since is None or progress != stall_progress:
                    stall_since = time.monotonic()
                    stall_progress = progress
                elif time.monotonic() - stall_since > self.deadlock_timeout:
                    merged: dict[int, str] = {}
                    for j, d in zip(jobs, dumps):
                        assert d is not None
                        for r, desc in d.items():
                            merged[len(merged)] = f"{j.name} rank {r}: {desc}"
                    for j in jobs:
                        j.abort.set("deadlock detected by watchdog", merged)
            else:
                stall_since = None

    def _finish(self) -> list[Any]:
        for t in self._threads:
            t.join()
        if self._failures:
            raise SpmdError(self._failures)
        return [self._results[r] for r in range(self.job.n)]


def run_spmd(n: int, fn: Callable[..., Any], *args: Any,
             deadlock_timeout: float = 5.0, **kwargs: Any) -> list[Any]:
    """Convenience wrapper: launch ``fn`` on ``n`` ranks and collect results."""
    return SpmdRunner(n, deadlock_timeout=deadlock_timeout).run(
        fn, *args, **kwargs)


def run_coupled(jobs: Sequence[tuple[str, int, Callable[..., Any], tuple]],
                *, deadlock_timeout: float = 10.0) -> dict[str, list[Any]]:
    """Launch several SPMD jobs concurrently in one process.

    This models the paper's distributed scenario: independently started
    parallel programs (each with its own world communicator) that couple
    through the name service (:class:`~repro.simmpi.NameService`).

    Parameters
    ----------
    jobs:
        Sequence of ``(name, nranks, fn, args)``; each rank runs
        ``fn(comm, *args)``.

    Returns
    -------
    dict mapping job name to its per-rank return values.
    """
    runners = {
        name: SpmdRunner(n, name=name, deadlock_timeout=deadlock_timeout)
        for name, n, _, _ in jobs
    }
    all_threads: list[threading.Thread] = []
    for name, n, fn, args in jobs:
        runner = runners[name]
        runner._threads = [
            threading.Thread(
                target=runner._rank_main, args=(r, fn, args, {}),
                name=f"{name}-rank{r}", daemon=True)
            for r in range(n)
        ]
        all_threads.extend(runner._threads)
    for t in all_threads:
        t.start()

    # One shared watchdog across all jobs: coupled programs can deadlock
    # on each other, which per-job watchdogs would miss.
    sentinel = next(iter(runners.values()))
    sentinel._threads = all_threads
    sentinel._supervise([r.job for r in runners.values()])

    failures: dict[int, BaseException] = {}
    results: dict[str, list[Any]] = {}
    offset = 0
    for name, n, _, _ in jobs:
        runner = runners[name]
        for r in range(n):
            if r in runner._failures:
                failures[offset + r] = runner._failures[r]
        results[name] = [runner._results.get(r) for r in range(n)]
        offset += n
    if failures:
        raise SpmdError(failures)
    return results
