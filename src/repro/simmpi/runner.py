"""SPMD job launch with a deadlock watchdog and pluggable backends.

:func:`run_spmd` is the ``mpiexec`` analogue: it runs ``fn(comm, *args)``
on ``n`` ranks and returns the per-rank return values.  Exceptions on any
rank abort the job and are re-raised as :class:`~repro.errors.SpmdError`
with the full per-rank failure map.

Ranks execute on one of two backends (``backend=`` argument or the
``REPRO_BACKEND`` environment variable, see
:mod:`repro.simmpi.transport`): ``"threads"`` — daemon threads of this
process, the historical fully deterministic default — or ``"procs"`` —
one forked process per rank with payloads in shared-memory slot rings
(:mod:`repro.simmpi.procs`), which is what lets redistribution
throughput scale with cores.

The watchdog implements the guarantee DESIGN.md promises: a test that
deadlocks raises :class:`~repro.errors.DeadlockError` with a dump of what
every blocked rank was waiting for, instead of hanging the suite.  The
heuristic is exact for this runtime: sends never block, so the job is
deadlocked precisely when every unfinished rank is blocked in a receive
and no message has been delivered since.  Supervision is event-driven:
the watchdog thread sleeps on a condition that rank-side progress,
block-state and finish transitions notify, so idle supervision costs no
CPU (the old fixed 20 ms busy-poll is gone).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.errors import SpmdError
from repro.simmpi import sanitize as _san
from repro.simmpi.communicator import Communicator, allocate_context
from repro.simmpi.matching import AbortFlag
from repro.simmpi.transport import ThreadTransport, resolve_backend
from repro.util.counters import Counters


class Job:
    """Shared state of one running SPMD job."""

    def __init__(self, n: int, *, name: str = "job",
                 transport_factory: Optional[Callable[..., Any]] = None):
        if n < 1:
            raise ValueError(f"job needs at least 1 rank, got {n}")
        self.name = name
        self.n = n
        self.abort = AbortFlag()
        self.counters = Counters()
        self._progress = 0
        self._progress_lock = threading.Lock()
        self._blocked: dict[int, Optional[str]] = {}
        self._finished: set[int] = set()
        self._state_lock = threading.Lock()
        #: Condition the watchdog sleeps on; notified by every progress,
        #: block-state or finish transition (event-driven supervision).
        self.watch = threading.Condition()
        factory = transport_factory or (
            lambda n, abort, progress, block_state: ThreadTransport(
                n, abort, progress=progress, block_state=block_state))
        self.transport = factory(n, self.abort, self._bump,
                                 self._set_block_state)

    @property
    def mailboxes(self):
        """The threads backend's per-rank mailboxes (compat accessor)."""
        return self.transport.mailboxes

    # -- watchdog inputs ------------------------------------------------

    def _notify_watch(self) -> None:
        with self.watch:
            self.watch.notify_all()

    def _bump(self) -> None:
        with self._progress_lock:
            self._progress += 1
        self._notify_watch()

    def progress(self) -> int:
        with self._progress_lock:
            return self._progress

    def _set_block_state(self, rank: int, desc: Optional[str]) -> None:
        with self._state_lock:
            if desc is None:
                self._blocked.pop(rank, None)
            else:
                self._blocked[rank] = desc
        self._notify_watch()

    def mark_finished(self, rank: int) -> None:
        with self._state_lock:
            self._finished.add(rank)
        self._notify_watch()

    def all_finished(self) -> bool:
        with self._state_lock:
            return len(self._finished) == self.n

    def stalled(self) -> Optional[dict[int, str]]:
        """If no unfinished rank is runnable, return the block dump.

        Returns an empty dict when all ranks finished (the job cannot
        unblock anyone else, but is not itself stuck) and ``None`` while
        at least one rank is runnable.
        """
        with self._state_lock:
            unfinished = set(range(self.n)) - self._finished
            if unfinished <= set(self._blocked):
                return {r: self._blocked[r] or "?" for r in sorted(unfinished)}
            return None

    def world(self, rank: int, context: int) -> Communicator:
        return Communicator(self, context, rank, tuple(range(self.n)))


def _watch_jobs(jobs: Sequence[Job], deadlock_timeout: float,
                *, qualify: bool) -> None:
    """Shared event-driven watchdog: wake on progress/block/finish
    notifications, abort every job once all unfinished ranks of every
    job have been blocked with no delivery for ``deadlock_timeout``.

    ``qualify`` selects the blocked-dump key style: plain ranks for a
    single job, ``"{job} rank {r}"`` strings for coupled launches.
    """
    # Multi-job callers must share one condition across jobs *before*
    # starting rank threads (see run_coupled) so one wait sees them all.
    cond = jobs[0].watch
    assert all(j.watch is cond for j in jobs)
    stall_since: Optional[float] = None
    stall_progress = -1
    with cond:
        # State is evaluated while holding the condition the rank-side
        # hooks notify through, so a transition can never slip between
        # the check and the wait (no lost wakeups, no busy-poll).
        while not all(j.all_finished() for j in jobs):
            progress = sum(j.progress() for j in jobs)
            dumps = [j.stalled() for j in jobs]
            if all(d is not None for d in dumps) and any(dumps):
                if stall_since is None or progress != stall_progress:
                    stall_since = time.monotonic()
                    stall_progress = progress
                elif time.monotonic() - stall_since > deadlock_timeout:
                    merged: dict[Any, str] = {}
                    for j, d in zip(jobs, dumps):
                        assert d is not None
                        for r, desc in d.items():
                            key = f"{j.name} rank {r}" if qualify else r
                            merged[key] = desc
                    for j in jobs:
                        j.abort.set("deadlock detected by watchdog", merged)
                    stall_since = None
                # sleep only until the stall deadline; any delivery or
                # state change notifies and re-evaluates immediately
                wait = (max(0.0, stall_since + deadlock_timeout
                            - time.monotonic()) + 0.005
                        if stall_since is not None else None)
            else:
                stall_since = None
                wait = None
            cond.wait(timeout=wait)


class SpmdRunner:
    """Launches and supervises one SPMD job (threads backend).

    Parameters
    ----------
    n:
        Number of ranks.
    deadlock_timeout:
        Seconds of global stall (all unfinished ranks blocked in receives,
        no deliveries) before the watchdog aborts the job.
    """

    def __init__(self, n: int, *, name: str = "job",
                 deadlock_timeout: float = 5.0):
        self.job = Job(n, name=name)
        self.deadlock_timeout = deadlock_timeout
        self._world_context = allocate_context()
        self._results: dict[int, Any] = {}
        self._failures: dict[int, BaseException] = {}
        self._threads: list[threading.Thread] = []

    def _rank_main(self, rank: int, fn: Callable[..., Any],
                   args: tuple, kwargs: dict) -> None:
        _san.register_actor(f"{self.job.name}-rank{rank}")
        comm = self.job.world(rank, self._world_context)
        try:
            self._results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported via SpmdError
            self._failures[rank] = exc
            # Unblock everyone else: a crashed rank will never send the
            # messages its peers are waiting for.
            self.job.abort.set(
                f"rank {rank} raised {type(exc).__name__}: {exc}",
                blocked={},
            )
        finally:
            self.job.mark_finished(rank)

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank; return values
        ordered by rank."""
        self._threads = [
            threading.Thread(
                target=self._rank_main, args=(r, fn, args, kwargs),
                name=f"{self.job.name}-rank{r}", daemon=True)
            for r in range(self.job.n)
        ]
        for t in self._threads:
            t.start()
        _watch_jobs([self.job], self.deadlock_timeout, qualify=False)
        return self._finish()

    def _finish(self) -> list[Any]:
        for t in self._threads:
            t.join()
        if self._failures:
            raise SpmdError(self._failures)
        return [self._results[r] for r in range(self.job.n)]


def run_spmd(n: int, fn: Callable[..., Any], *args: Any,
             deadlock_timeout: float = 5.0, backend: Optional[str] = None,
             transport_opts: Optional[dict] = None,
             **kwargs: Any) -> list[Any]:
    """Convenience wrapper: launch ``fn`` on ``n`` ranks and collect results.

    ``backend="procs"`` forks one process per rank and moves payloads
    through shared-memory slot rings; ``transport_opts`` tunes the ring
    (``slot_bytes``, ``slots_per_endpoint``).  Default: ``"threads"``
    (or the ``REPRO_BACKEND`` environment variable).
    """
    backend = resolve_backend(backend)
    if backend == "procs":
        from repro.simmpi.procs import run_spmd_procs
        return run_spmd_procs(n, fn, args, kwargs,
                              deadlock_timeout=deadlock_timeout,
                              opts=transport_opts)
    return SpmdRunner(n, deadlock_timeout=deadlock_timeout).run(
        fn, *args, **kwargs)


def run_coupled(jobs: Sequence[tuple[str, int, Callable[..., Any], tuple]],
                *, deadlock_timeout: float = 10.0,
                backend: Optional[str] = None,
                transport_opts: Optional[dict] = None) -> dict[str, list[Any]]:
    """Launch several SPMD jobs concurrently.

    This models the paper's distributed scenario: independently started
    parallel programs (each with its own world communicator) that couple
    through the name service (:class:`~repro.simmpi.NameService`).

    Parameters
    ----------
    jobs:
        Sequence of ``(name, nranks, fn, args)``; each rank runs
        ``fn(comm, *args)``.
    backend:
        ``"threads"`` (default) or ``"procs"``; on procs every rank of
        every job forks into one shared domain, so cross-job coupling
        and the deadlock watchdog span all of them.

    Returns
    -------
    dict mapping job name to its per-rank return values.

    Raises
    ------
    SpmdError
        keyed by ``"{job} rank {r}"`` strings identifying each failed
        rank across all jobs.
    """
    backend = resolve_backend(backend)
    if backend == "procs":
        from repro.simmpi.procs import run_coupled_procs
        return run_coupled_procs(jobs, deadlock_timeout=deadlock_timeout,
                                 opts=transport_opts)
    runners = {
        name: SpmdRunner(n, name=name, deadlock_timeout=deadlock_timeout)
        for name, n, _, _ in jobs
    }
    # Coupled jobs share one watch condition so the single watchdog's
    # event wait sees every job's progress/finish notifications.
    shared_watch = threading.Condition()
    for runner in runners.values():
        runner.job.watch = shared_watch
    all_threads: list[threading.Thread] = []
    for name, n, fn, args in jobs:
        runner = runners[name]
        runner._threads = [
            threading.Thread(
                target=runner._rank_main, args=(r, fn, args, {}),
                name=f"{name}-rank{r}", daemon=True)
            for r in range(n)
        ]
        all_threads.extend(runner._threads)
    for t in all_threads:
        t.start()

    # One shared watchdog across all jobs: coupled programs can deadlock
    # on each other, which per-job watchdogs would miss.
    _watch_jobs([r.job for r in runners.values()], deadlock_timeout,
                qualify=True)
    for t in all_threads:
        t.join()

    failures: dict[str, BaseException] = {}
    results: dict[str, list[Any]] = {}
    for name, n, _, _ in jobs:
        runner = runners[name]
        for r in range(n):
            if r in runner._failures:
                failures[f"{name} rank {r}"] = runner._failures[r]
        results[name] = [runner._results.get(r) for r in range(n)]
    if failures:
        raise SpmdError(failures)
    return results
