"""Nonblocking communication requests."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simmpi.status import Status


class Request:
    """Handle for a nonblocking operation (MPI_Request analogue).

    Send requests complete immediately (sends are buffered); receive
    requests perform the blocking match when :meth:`wait` is called.
    """

    def __init__(self, completer: Optional[Callable[[float | None], tuple[Any, Status]]] = None,
                 *, value: Any = None, status: Status | None = None):
        self._completer = completer
        self._value = value
        self._status = status
        self._done = completer is None

    def wait(self, timeout: float | None = None) -> Any:
        """Block until the operation completes; return the received value
        (``None`` for sends)."""
        if not self._done:
            assert self._completer is not None
            self._value, self._status = self._completer(timeout)
            self._done = True
        return self._value

    def test(self) -> bool:
        """True when the operation has already completed."""
        return self._done

    @property
    def status(self) -> Status | None:
        return self._status


def wait_all(requests: list[Request]) -> list[Any]:
    """Wait on every request; return their values in order."""
    return [r.wait() for r in requests]
