"""Shared-memory primitives of the procs backend.

Two fixed-layout ``multiprocessing.shared_memory`` segments per domain
(a domain = all ranks of a ``run_spmd`` job, or all ranks of every job
of a ``run_coupled`` launch):

* :class:`SegmentPool` — the payload plane.  One segment holds
  ``endpoints * slots_per_endpoint`` fixed-size slots plus a one-byte
  ownership flag per slot.  Slots are **statically partitioned by
  sending endpoint**, so slot allocation is a lock-free local scan of
  the sender's own ring: the sender flips a slot's flag ``FREE -> BUSY``
  before writing payload bytes into it, the receiver flips it back
  after consuming.  The control message announcing the slot travels
  through an OS pipe (:class:`multiprocessing.queues.Queue`), which
  orders the flag/payload writes before the receiver's reads.  A full
  ring degrades gracefully: the payload is shipped inline through the
  control queue instead (counted — steady-state benchmarks assert the
  fallback never fires).  The accounting mirrors
  :class:`repro.schedule.bufpool.BufferPool`: ``loans`` / ``reuses``
  (slot grants) vs ``allocations`` (inline fallbacks — the only path
  that allocates per message).

* :class:`SharedState` — the watchdog plane.  A per-endpoint progress
  counter, run-state byte (running / blocked / finished) and a short
  blocked-on description, plus a domain-wide abort flag and reason.
  Each per-endpoint field has exactly one writer (the owning rank
  process); the abort record is written by the supervisor only.  The
  supervisor applies the same stall rule as the threads watchdog: the
  domain is deadlocked when every unfinished endpoint is blocked and
  the progress sum has not moved for the timeout.

Wire format of one control message (pickled by the queue):
``(MSG, context, source, tag, nbytes, kind, meta, slot, inline)`` where
``kind`` is ``ND`` (array: meta = (dtype-str, shape)), ``BYTES``,
``PICKLE`` or ``OBJ`` (small immutable scalars shipped inline), and
``slot`` is the segment slot index or ``-1`` for inline payloads.
"""

from __future__ import annotations

import itertools
import os
import pickle
import sys
import threading
from multiprocessing import shared_memory
from typing import Any, Optional

import numpy as np

from repro.simmpi import sanitize as _san
from repro.util.counters import Counters, TRANSPORT_STATS

__all__ = ["SegmentPool", "SharedState", "WindowSegment",
           "encode_payload", "decode_payload"]

# control-message verbs
MSG = "MSG"
ABORT = "ABORT"
RDV_REPLY = "RDV_REPLY"
STOP = "STOP"

# payload kinds
ND = "nd"
BYTES = "by"
PICKLE = "pk"
OBJ = "ob"


def _inline_max_from_env(default: int = 2048) -> int:
    """Resolve ``REPRO_SHM_INLINE_MAX`` (bytes, >= 0) or ``default``."""
    raw = os.environ.get("REPRO_SHM_INLINE_MAX")
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SHM_INLINE_MAX must be an integer byte count, "
            f"got {raw!r}") from None
    if value < 0:
        raise ValueError(
            f"REPRO_SHM_INLINE_MAX must be >= 0, got {value}")
    return value


#: Payloads at most this many bytes ride inline in the control message
#: even when a slot is free — a pipe write beats a slot round-trip for
#: tiny protocol traffic (barrier tokens, handshakes, scalar reduces).
#: Override with ``REPRO_SHM_INLINE_MAX`` (bytes; 0 disables inlining
#: of anything but slot-ring overflow).
INLINE_MAX = _inline_max_from_env()

_FREE = 0
_BUSY = 1


class SegmentPool:
    """Fixed-size payload slots in one shared segment, partitioned by
    sending endpoint.

    Created once in the supervisor process (which owns the segment's
    lifetime and unlinks it at teardown); rank processes inherit the
    handle across ``fork`` and build their NumPy views lazily.
    """

    def __init__(self, endpoints: int, *, slot_bytes: int = 1 << 18,
                 slots_per_endpoint: int = 8):
        if slot_bytes <= 0 or slots_per_endpoint <= 0:
            raise ValueError("slot_bytes and slots_per_endpoint must be > 0")
        self.endpoints = endpoints
        # round slots up to 64 bytes so every slot start is aligned for
        # any dtype view the receiver reinterprets it as
        self.slot_bytes = (int(slot_bytes) + 63) & ~63
        self.slots_per_endpoint = int(slots_per_endpoint)
        self.nslots = endpoints * self.slots_per_endpoint
        # flags live at the front, 64-byte aligned payload area after;
        # under REPRO_TSAN a shadow plane (per-slot holder token +
        # generation counter) rides at the tail of the same segment so
        # forked peers share one copy of the sanitizer's slot state.
        self._data_off = (self.nslots + 63) & ~63
        self._tsan_off = self._data_off + self.nslots * self.slot_bytes
        shadow = 8 * self.nslots if _san.enabled() else 0
        self._shm = shared_memory.SharedMemory(
            create=True, size=self._tsan_off + shadow)
        self._flags = np.ndarray(self.nslots, dtype=np.uint8,
                                 buffer=self._shm.buf)
        self._flags[:] = _FREE  # verify: allow(V109) - pre-publication init
        if shadow:
            self._tsan_holder = np.ndarray(
                self.nslots, dtype=np.int32, buffer=self._shm.buf,
                offset=self._tsan_off)
            self._tsan_gen = np.ndarray(
                self.nslots, dtype=np.uint32, buffer=self._shm.buf,
                offset=self._tsan_off + 4 * self.nslots)
            self._tsan_holder[:] = 0
            self._tsan_gen[:] = 0
        else:
            self._tsan_holder = self._tsan_gen = None
        #: per-process slot accounting (bufpool-style names)
        self.stats = Counters()

    # -- sender side -------------------------------------------------------

    def acquire(self, endpoint: int) -> Optional[int]:
        """A free slot owned by ``endpoint``, flagged BUSY — or ``None``
        when the endpoint's whole ring is still in flight."""
        lo = endpoint * self.slots_per_endpoint
        self.stats.add("loans")
        for s in range(lo, lo + self.slots_per_endpoint):
            if self._flags[s] == _FREE:
                self._flags[s] = _BUSY
                san = _san.ACTIVE
                if san is not None and self._tsan_holder is not None:
                    san.slot_acquired(self, s)
                self.stats.add("reuses")
                # gauges are per process: acquire charges the sender's
                # process, release credits the receiver's — each side's
                # peak_* reflects the slots it held/consumed.
                TRANSPORT_STATS.gauge_add("slot_bytes", self.slot_bytes)
                TRANSPORT_STATS.gauge_add("resident_bytes", self.slot_bytes)
                return s
        self.stats.add("ring_full")
        return None

    def release(self, slot: int) -> None:
        """Receiver side: mark ``slot`` consumed (reusable by its owner)."""
        san = _san.ACTIVE
        if san is not None and self._tsan_holder is not None:
            # shadow holder must clear before the flag flips, so a
            # racing acquire of a half-released slot sees it held
            san.slot_released(self, slot)
        self._flags[slot] = _FREE
        self.stats.add("releases")
        TRANSPORT_STATS.gauge_add("slot_bytes", -self.slot_bytes)
        TRANSPORT_STATS.gauge_add("resident_bytes", -self.slot_bytes)

    def slot_view(self, slot: int, nbytes: int,
                  dtype: Any = None) -> np.ndarray:
        """A uint8 view of the first ``nbytes`` of ``slot``'s payload.

        ``dtype`` declares how the caller will reinterpret the bytes;
        passing it validates that the payload is a whole number of
        elements and that the slot start satisfies the dtype's
        alignment, instead of letting a sender/receiver dtype mismatch
        silently reinterpret bytes.
        """
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"payload of {nbytes} bytes does not fit in a "
                f"{self.slot_bytes}-byte slot — raise slot_bytes or ship "
                f"the payload inline")
        off = self._data_off + slot * self.slot_bytes
        if dtype is not None:
            dt = np.dtype(dtype)
            if dt.itemsize and nbytes % dt.itemsize:
                raise ValueError(
                    f"slot {slot}: payload of {nbytes} bytes is not a "
                    f"whole number of {dt} elements (itemsize "
                    f"{dt.itemsize}) — sender/receiver dtype mismatch")
            align = dt.alignment or 1
            if off % align:
                raise ValueError(
                    f"slot {slot}: payload offset {off} is not "
                    f"{align}-byte aligned for dtype {dt}")
        return np.ndarray(nbytes, dtype=np.uint8,
                          buffer=self._shm.buf, offset=off)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._flags = None
        self._tsan_holder = self._tsan_gen = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray views in teardown
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double teardown
            pass


# -- one-sided RMA windows ---------------------------------------------------


class WindowSegment:
    """One rank's RMA window: its persistent-channel destination buffer
    exposed in a dedicated shared segment, plus the epoch header that
    replaces per-message rendezvous.

    Layout::

        epoch    u64            # generation counter, owner-written
        nwriters u64            # sanity field, fixed at creation
        done     u64[nwriters]  # per-writer commit counters
        <pad to 64 bytes>
        payload  u8[nbytes]     # the owner's flat recv buffer

    Seqlock-style protocol: the owner opens exposure epoch ``k`` by
    storing ``epoch = k``; writer ``i`` spins until ``epoch >= k``,
    scatters its bytes straight into the payload area, then stores
    ``done[i] = k``; the owner's fence spins until ``min(done) >= k``.
    Every field has exactly one writer (epoch: owner; ``done[i]``:
    writer ``i``), all counters are aligned 8-byte stores, and the GIL's
    acquire/release semantics plus x86-TSO ordering make the payload
    writes visible before the ``done`` store that publishes them — the
    same single-writer discipline as :class:`SharedState`.

    The owner creates the segment and is responsible for ``unlink``;
    writers attach by name and only ever ``close``.

    ``close`` deliberately does **not** unmap immediately.  NumPy
    releases its ``Py_buffer`` on ``shm.buf`` as soon as a view's data
    pointer is captured (keeping only an object reference), so
    ``SharedMemory.close()`` sees zero exports and happily munmaps
    pages that application arrays — a :meth:`~repro.dad.darray.
    DistributedArray.rebase`-d destination array lives *inside* the
    payload — still address; the next read is a segfault.  ``close``
    therefore drops this object's header views and retires the mapping
    into :data:`RETIRED_WINDOWS`, a generation-counted free list that
    reclaims it as soon as no live view can reference the pages (every
    derived view — header fields, dtype views, rebased arrays — holds
    a reference chain back to the payload root, so root refcount decay
    is the proof).  The ``retired_segments`` / ``retired_bytes``
    TRANSPORT_STATS gauges track what is parked awaiting reclamation.
    """

    _HDR_ALIGN = 64

    def __init__(self, nbytes: int, nwriters: int, *,
                 _attach_name: Optional[str] = None):
        if nbytes <= 0 or nwriters <= 0:
            raise ValueError("window needs nbytes > 0 and nwriters > 0")
        # opportunistic reclamation: every new window sweeps the free
        # list, so retired residue is bounded by *live* views, not by
        # how many channels the process has ever opened
        RETIRED_WINDOWS.sweep()
        self.nbytes = int(nbytes)
        self.nwriters = int(nwriters)
        hdr = 8 + 8 + 8 * self.nwriters
        self._data_off = (hdr + self._HDR_ALIGN - 1) & ~(self._HDR_ALIGN - 1)
        size = self._data_off + self.nbytes
        self.owner = _attach_name is None
        if self.owner:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
        else:
            # NOTE: attaching registers the name with the resource
            # tracker again.  That is fine here: procs ranks fork from
            # the supervisor, so every process shares ONE tracker whose
            # name cache is a set — the duplicate register is idempotent
            # and the owner's unlink clears the single entry.
            self._shm = shared_memory.SharedMemory(name=_attach_name)
            if self._shm.size < size:
                raise ValueError(
                    f"window segment {_attach_name!r} is {self._shm.size} "
                    f"bytes, need {size} — geometry mismatch with owner")
        buf = self._shm.buf
        self._epoch = np.ndarray(1, dtype=np.uint64, buffer=buf)
        self._nwriters = np.ndarray(1, dtype=np.uint64, buffer=buf, offset=8)
        self._done = np.ndarray(self.nwriters, dtype=np.uint64,
                                buffer=buf, offset=16)
        self.data = np.ndarray(self.nbytes, dtype=np.uint8,
                               buffer=buf, offset=self._data_off)
        if self.owner:
            self._epoch[0] = 0
            self._nwriters[0] = self.nwriters
            self._done[:] = 0
        elif int(self._nwriters[0]) != self.nwriters:
            raise ValueError(
                f"window segment {_attach_name!r} has "
                f"{int(self._nwriters[0])} writers, expected {self.nwriters}")

    @classmethod
    def attach(cls, name: str, nbytes: int, nwriters: int) -> "WindowSegment":
        """Map an existing window by segment name (writer side)."""
        return cls(nbytes, nwriters, _attach_name=name)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- epoch header (single writer per field) ------------------------------

    def epoch(self) -> int:
        return int(self._epoch[0])

    def set_epoch(self, value: int) -> None:
        self._epoch[0] = np.uint64(value)

    def done(self, writer: int) -> int:
        return int(self._done[writer])

    def set_done(self, writer: int, value: int) -> None:
        self._done[writer] = np.uint64(value)

    def min_done(self) -> int:
        return int(self._done.min())

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop the header views and retire the mapping into the
        generation-counted free list (see the class docstring)."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        root, self.data = self.data, None
        self._epoch = self._nwriters = self._done = None
        RETIRED_WINDOWS.retire(self._shm, self._shm.size, root)

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double teardown
            pass


class _RetiredWindows:
    """Generation-counted free list of closed window mappings.

    :meth:`WindowSegment.close` cannot unmap while application arrays
    still view the payload, but parking mappings forever (the PR-6
    behaviour) leaks a whole segment per closed channel.  Each retired
    entry gets a monotonically increasing generation and keeps the
    window's payload-root array alive; :meth:`sweep` reclaims every
    entry whose root is no longer referenced from anywhere else —
    every live view of the segment (header fields excepted, which
    ``close`` already dropped; dtype views; rebased destination
    arrays) holds a reference chain back to that root, so refcount
    decay to the free list's own reference proves no live view can
    address the pages.  Sweeps run on every retire and on every new
    window construction, and are explicitly callable; the
    ``retired_segments`` / ``retired_bytes`` gauges (with ``peak_``
    high-water twins) expose the parked residue.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._gen = itertools.count(1)
        #: generation -> (mapping, nbytes, payload-root view)
        self._entries: dict[int, tuple] = {}

    def retire(self, mapping, nbytes: int, root) -> int:
        with self._lock:
            gen = next(self._gen)
            self._entries[gen] = (mapping, nbytes, root)
        TRANSPORT_STATS.gauge_add("retired_segments", 1)
        TRANSPORT_STATS.gauge_add("retired_bytes", nbytes)
        self.sweep()
        return gen

    def sweep(self) -> int:
        """Unmap every retired mapping with no outside reference to its
        payload root; returns how many were reclaimed."""
        freed = 0
        with self._lock:
            for gen in sorted(self._entries):
                mapping, nbytes, _root = self._entries[gen]
                # Baseline refcount 3: the entry tuple, the ``_root``
                # local just unpacked, and getrefcount's own argument.
                # Anything above that is a live outside view.
                if _root is not None and sys.getrefcount(_root) > 3:
                    continue
                try:
                    mapping.close()
                except BufferError:  # pragma: no cover - exported view
                    continue         # keep the entry; retry next sweep
                del self._entries[gen]
                TRANSPORT_STATS.gauge_add("retired_segments", -1)
                TRANSPORT_STATS.gauge_add("retired_bytes", -nbytes)
                freed += 1
        return freed

    def pending(self) -> int:
        with self._lock:
            return len(self._entries)


#: Closed-window mappings awaiting reclamation (one per process).
RETIRED_WINDOWS = _RetiredWindows()


# -- watchdog state ----------------------------------------------------------

STATE_RUNNING = 0
STATE_BLOCKED = 1
STATE_FINISHED = 2

_DESC_BYTES = 120
_REASON_BYTES = 480


class SharedState:
    """Cross-process watchdog struct: per-endpoint progress counters and
    blocked-state table, plus the domain abort record.

    Layout per endpoint: ``progress u64 | state u8 | desc char[120]``.
    Domain header: ``abort u8 | reason char[480]``.
    """

    def __init__(self, endpoints: int):
        self.endpoints = endpoints
        size = (8 * endpoints) + endpoints + (_DESC_BYTES * endpoints) \
            + 1 + _REASON_BYTES
        size = (size + 63) & ~63
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        buf = self._shm.buf
        off = 0
        self.progress = np.ndarray(endpoints, dtype=np.uint64,
                                   buffer=buf, offset=off)
        off += 8 * endpoints
        self.state = np.ndarray(endpoints, dtype=np.uint8,
                                buffer=buf, offset=off)
        off += endpoints
        self._descs = np.ndarray((endpoints, _DESC_BYTES), dtype=np.uint8,
                                 buffer=buf, offset=off)
        off += _DESC_BYTES * endpoints
        self._abort = np.ndarray(1, dtype=np.uint8, buffer=buf, offset=off)
        off += 1
        self._reason = np.ndarray(_REASON_BYTES, dtype=np.uint8,
                                  buffer=buf, offset=off)
        self.progress[:] = 0
        self.state[:] = STATE_RUNNING  # verify: allow(V109) - init
        self._descs[:] = 0
        self._abort[0] = 0
        self._reason[:] = 0

    # -- rank side (single writer per endpoint) ----------------------------

    def bump(self, endpoint: int) -> None:
        san = _san.ACTIVE
        if san is not None:
            san.state_write(endpoint, f"state.bump(endpoint={endpoint})")
        self.progress[endpoint] += np.uint64(1)

    def set_blocked(self, endpoint: int, desc: Optional[str]) -> None:
        san = _san.ACTIVE
        if san is not None:
            san.state_write(endpoint,
                            f"state.set_blocked(endpoint={endpoint})")
        if self.state[endpoint] == STATE_FINISHED:
            return
        if desc is None:
            self.state[endpoint] = STATE_RUNNING
            return
        raw = desc.encode("utf-8", "replace")[:_DESC_BYTES]
        self._descs[endpoint, :len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        self._descs[endpoint, len(raw):] = 0
        self.state[endpoint] = STATE_BLOCKED

    def set_finished(self, endpoint: int) -> None:
        san = _san.ACTIVE
        if san is not None:
            san.state_write(endpoint,
                            f"state.set_finished(endpoint={endpoint})")
        self.state[endpoint] = STATE_FINISHED

    # -- supervisor side ---------------------------------------------------

    def desc(self, endpoint: int) -> str:
        raw = bytes(self._descs[endpoint])
        return raw.split(b"\0", 1)[0].decode("utf-8", "replace") or "?"

    def total_progress(self) -> int:
        return int(self.progress.sum())

    def stalled(self) -> Optional[dict[int, str]]:
        """Blocked dump if no unfinished endpoint is runnable (mirrors
        :meth:`repro.simmpi.runner.Job.stalled`)."""
        state = self.state.copy()
        unfinished = np.flatnonzero(state != STATE_FINISHED)
        if np.all(state[unfinished] == STATE_BLOCKED):
            return {int(e): self.desc(int(e)) for e in unfinished}
        return None

    def set_abort(self, reason: str) -> None:
        san = _san.ACTIVE
        if san is not None:
            san.state_write(None, "state.set_abort")
        raw = reason.encode("utf-8", "replace")[:_REASON_BYTES]
        self._reason[:len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        self._reason[len(raw):] = 0
        self._abort[0] = 1

    def aborted(self) -> bool:
        return bool(self._abort[0])

    def abort_reason(self) -> str:
        raw = bytes(self._reason)
        return raw.split(b"\0", 1)[0].decode("utf-8", "replace")

    def close(self) -> None:
        self.progress = self.state = self._descs = None
        self._abort = self._reason = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass


# -- payload encode/decode ---------------------------------------------------


def encode_payload(obj: Any) -> tuple[str, Any, Optional[np.ndarray], Any]:
    """Classify one wire payload for the procs transport.

    Returns ``(kind, meta, buf, inline)``: ``buf`` is a flat uint8 view
    of the bytes to place in a slot (or ship inline when small / no slot
    is free), ``inline`` the ready-to-pickle object for slot-less kinds.
    """
    if isinstance(obj, np.ndarray):
        arr = obj
        return ND, (arr.dtype.str, arr.shape), arr, None
    if isinstance(obj, (bytes, bytearray)):
        raw = np.frombuffer(bytes(obj), dtype=np.uint8)
        return BYTES, None, raw, None
    if obj is None or isinstance(obj, (bool, int, float, complex, str)):
        return OBJ, None, None, obj
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return PICKLE, None, np.frombuffer(blob, dtype=np.uint8), None


def decode_payload(kind: str, meta: Any, raw: np.ndarray | bytes | None,
                   inline: Any) -> Any:
    """Rebuild the receiver-side payload.

    For ``ND`` the result is a (possibly read-only) view over ``raw`` —
    the mailbox consumes it synchronously as a lent view, so scattering
    straight out of a shared slot needs no staging copy.
    """
    if kind == OBJ:
        return inline
    if raw is None:
        raise ValueError(f"kind {kind!r} needs payload bytes")
    if kind == ND:
        dtype_str, shape = meta
        buf = raw if isinstance(raw, np.ndarray) else \
            np.frombuffer(raw, dtype=np.uint8)
        return buf.view(np.dtype(dtype_str)).reshape(shape)
    if kind == BYTES:
        return bytes(raw if not isinstance(raw, np.ndarray)
                     else raw.tobytes())
    if kind == PICKLE:
        blob = raw.tobytes() if isinstance(raw, np.ndarray) else bytes(raw)
        return pickle.loads(blob)
    raise ValueError(f"unknown payload kind {kind!r}")
