"""Happens-before race sanitizer for the lock-free shared-memory layer.

The procs backend's fast paths are lock-free protocols over shared
segments: the :class:`~repro.simmpi.shm.SegmentPool` slot ring
(FREE/BUSY flag transitions ordered by the control queue), the
:class:`~repro.simmpi.shm.WindowSegment` epoch/done seqlock, the
single-writer :class:`~repro.simmpi.shm.SharedState` watchdog fields,
and the mailbox prepost handoff that completes a receive in the
sender's thread.  Each is correct only under an ordering discipline no
type checker sees.  This module is the *dynamic* half of that proof
obligation (:mod:`repro.verify.race` holds the bounded-model half):
with ``REPRO_TSAN=1`` every synchronization site ticks a vector clock
and checks the protocol invariant that licenses the access, recording
a :class:`RaceReport` — never raising mid-protocol — when an access is
not happens-after the operation that must precede it.

Happens-before edges tracked:

* **slot ring** — ``acquire`` joins the consumer's release clock
  (in-process), ``publish`` ships the sender's clock with the control
  message (the wire piggyback under procs), ``consume`` joins it.  A
  per-slot *holder* / *generation* shadow pair lives in a side region
  of the pool's own segment, so the checks see cross-process state:
  acquiring a slot whose holder is still set, or consuming a
  generation the ring has moved past, is reuse before release (ABA).
* **seqlock windows** — the epoch header itself is the sync object:
  a put must happen inside an exposure epoch (``epoch >= done+1``), a
  commit may only publish an exposed epoch once, and an owner read is
  torn unless ``min(done) == epoch`` (fence complete, next epoch not
  yet open).  Clocks are published per window / per done-counter so
  reports carry the ordering context.
* **watchdog fields** — every per-endpoint field has exactly one
  writing process (the owning rank) and the abort record exactly one
  (the supervisor); writes from anyone else are unsynchronized.
* **mailboxes** — ``deliver`` stamps the envelope with the sender's
  clock; the receiver joins it when the match completes, so
  cross-thread report stacks are ordered even on the threads backend.

Zero cost when off: call sites guard with ``if _san.ACTIVE is not
None`` — one module-global load and an identity test, the same
discipline as :func:`repro.verify.hook.maybe_verify_side` — and the
wire format is untouched (the clock rides as an optional tenth tuple
field only while enabled).  The A2 ablation benchmark proves the
disabled path adds no counter traffic and no measurable per-step wall
time.

Reports are recorded, not raised: a race does not change control flow
(the shipped tree must run identically under the sanitizer), but
``RACE_STATS`` counts every report and the procs backend fails a rank
at exit if its process accumulated any — so a CI shard running under
``REPRO_TSAN=1`` is a whole-suite cleanliness proof.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.util.counters import RACE_STATS

__all__ = ["RaceReport", "Sanitizer", "enabled", "set_tsan",
           "register_actor", "current_actor", "reports", "clear_reports",
           "UNSYNC_WRITE", "TORN_READ", "SLOT_REUSE"]

# report kinds
UNSYNC_WRITE = "unsynchronized-write"
TORN_READ = "torn-seqlock-read"
SLOT_REUSE = "slot-reuse-before-release"

_KIND_COUNTER = {
    UNSYNC_WRITE: "reports_unsynchronized_write",
    TORN_READ: "reports_torn_seqlock_read",
    SLOT_REUSE: "reports_slot_reuse",
}


@dataclass
class RaceReport:
    """One detected ordering violation.

    ``current_stack`` is the full traceback of the access that tripped
    the check (this process, this thread); ``prior`` describes the
    access it raced with — a full stack when that access happened in
    this process, or the short site tag piggybacked on the wire when it
    happened in a peer process.
    """

    kind: str                     #: UNSYNC_WRITE / TORN_READ / SLOT_REUSE
    site: str                     #: synchronization site, e.g. ``slot.publish``
    detail: str                   #: what invariant failed, with values
    actor: str                    #: logical actor of the racing access
    current_stack: str            #: traceback of the access reported here
    prior: str = ""               #: stack or wire-site tag of the other access
    clock: dict = field(default_factory=dict)  #: actor vector clock at report

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        head = f"[{self.kind}] {self.site} ({self.actor}): {self.detail}"
        if self.prior:
            head += f"\n  prior access: {self.prior}"
        return head


def _actor_token(name: str) -> int:
    """Nonzero 31-bit token identifying one actor in shared shadow
    state (the holder word of a slot).  Collisions only blur a report's
    attribution, never its detection."""
    return (hash(name) & 0x7FFFFFFF) | 1


class Sanitizer:
    """Vector clocks plus protocol shadow state for one process.

    Forked rank processes inherit the instance (and therefore the
    enablement decision) from the supervisor; clocks and reports are
    per-process, while slot shadow state lives in the shared segment so
    cross-process checks see it.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._tls = threading.local()
        self._reports: list[RaceReport] = []
        #: last published clock per sync object (windows, slots, state)
        self._sync_clocks: dict[Any, dict[str, int]] = {}
        #: in-process release->acquire edge per (pool id, slot)
        self._release_clocks: dict[tuple, dict[str, int]] = {}
        #: claimed single-writer fields: key -> claiming actor name
        self._claims: dict[Any, str] = {}

    # -- actors and clocks -------------------------------------------------

    def register_actor(self, name: str) -> str:
        """Bind the calling thread to a logical actor (a rank, a pump
        thread, a supervisor)."""
        self._tls.actor = name
        self._tls.clock = {name: 0}
        return name

    def actor(self) -> str:
        name = getattr(self._tls, "actor", None)
        if name is None:
            name = f"pid{os.getpid()}:t{threading.get_ident()}"
            self.register_actor(name)
        return name

    def _clock(self) -> dict[str, int]:
        self.actor()
        return self._tls.clock

    def _tick(self) -> dict[str, int]:
        clock = self._clock()
        clock[self._tls.actor] = clock.get(self._tls.actor, 0) + 1
        RACE_STATS.add("sync_ops")
        return clock

    def _publish(self, key: Any) -> dict[str, int]:
        """Tick and record this actor's clock on a sync object; returns
        a snapshot safe to ship across threads or the wire."""
        snap = dict(self._tick())
        with self._lock:
            self._sync_clocks[key] = snap
        return snap

    def _join(self, other: Optional[dict[str, int]]) -> None:
        if not other:
            return
        clock = self._clock()
        for a, t in other.items():
            if clock.get(a, 0) < t:
                clock[a] = t
        RACE_STATS.add("sync_ops")

    def _join_key(self, key: Any) -> None:
        with self._lock:
            snap = self._sync_clocks.get(key)
        self._join(snap)

    # -- reporting ---------------------------------------------------------

    def _report(self, kind: str, site: str, detail: str,
                prior: str = "") -> RaceReport:
        rep = RaceReport(
            kind=kind, site=site, detail=detail, actor=self.actor(),
            current_stack="".join(traceback.format_stack(limit=12)[:-2]),
            prior=prior, clock=dict(self._clock()))
        with self._lock:
            self._reports.append(rep)
        RACE_STATS.add("reports")
        RACE_STATS.add(_KIND_COUNTER[kind])
        return rep

    @property
    def race_reports(self) -> list[RaceReport]:
        with self._lock:
            return list(self._reports)

    def clear(self) -> None:
        with self._lock:
            self._reports.clear()
            self._sync_clocks.clear()
            self._release_clocks.clear()
            self._claims.clear()

    # -- slot-ring sites (SegmentPool accessors call these) ----------------

    def slot_acquired(self, pool, slot: int) -> None:
        """FREE->BUSY transition: the slot must not still be held."""
        holder = int(pool._tsan_holder[slot])
        me = _actor_token(self.actor())
        if holder != 0:
            self._report(
                SLOT_REUSE, f"slot.acquire(slot={slot})",
                f"slot handed out while still held (holder token "
                f"{holder}) — its flag went FREE before the holder "
                f"released it",
                prior=f"actor token {holder} (release never ran)")
        pool._tsan_holder[slot] = me
        pool._tsan_gen[slot] += 1
        key = (id(pool), slot)
        with self._lock:
            rel = self._release_clocks.pop(key, None)
        self._join(rel)
        self._tick()

    def slot_publish(self, pool, slot: int) -> tuple:
        """Sender is done writing payload bytes; returns the wire token
        ``(generation, clock, site-tag)`` the control message carries.
        ``slot`` may be ``-1`` for inline payloads (clock only)."""
        actor = self.actor()
        if slot < 0 or pool is None or pool._tsan_holder is None:
            return (None, dict(self._tick()),
                    f"{actor}:inline_publish")
        me = _actor_token(actor)
        holder = int(pool._tsan_holder[slot])
        if holder != me:
            self._report(
                UNSYNC_WRITE, f"slot.publish(slot={slot})",
                f"payload published from a slot this actor does not "
                f"hold (holder token {holder}, mine {me}) — write "
                f"without a FREE->BUSY acquire",
                prior=f"actor token {holder or '<none>'}")
        gen = int(pool._tsan_gen[slot])
        clock = self._publish(("slot", id(pool), slot))
        return (gen, clock, f"{actor}:slot_publish(slot={slot})")

    def slot_consume(self, pool, slot: int, token: Optional[tuple]) -> None:
        """Receiver observed the control message for ``slot``; the
        payload bytes it is about to read must still be generation
        ``token[0]``."""
        if token is None:
            return
        gen, clock, site = token
        if (gen is not None and slot >= 0 and pool is not None
                and pool._tsan_gen is not None):
            now = int(pool._tsan_gen[slot])
            if now != gen:
                self._report(
                    SLOT_REUSE, f"slot.consume(slot={slot})",
                    f"consuming generation {gen} but the ring is at "
                    f"generation {now} — the slot was released and "
                    f"re-acquired before this read (ABA reuse, torn "
                    f"payload)", prior=site)
        self._join(clock)

    def slot_released(self, pool, slot: int) -> None:
        """BUSY->FREE transition: shadow state must be cleared *before*
        the flag flips, so a racing acquire sees the held shadow."""
        if int(pool._tsan_holder[slot]) == 0:
            self._report(
                SLOT_REUSE, f"slot.release(slot={slot})",
                f"release of a slot that is not held — double release "
                f"or release without a matching acquire")
        pool._tsan_holder[slot] = 0
        key = (id(pool), slot)
        snap = self._publish(("slot-release", id(pool), slot))
        with self._lock:
            self._release_clocks[key] = snap

    # -- seqlock window sites (rma.py calls these) -------------------------

    def win_open(self, seg, epoch: int) -> None:
        """Owner opens exposure epoch ``epoch``; the previous epoch must
        have been fenced, or owner reads of it could tear under the new
        epoch's writes."""
        if epoch > 1 and seg.min_done() < epoch - 1:
            self._report(
                TORN_READ, f"win.epoch_open({seg.name}, epoch={epoch})",
                f"epoch {epoch} opened before fence({epoch - 1}) "
                f"completed (min done = {seg.min_done()}) — epoch-"
                f"{epoch - 1} reads can tear under epoch-{epoch} writes")
        self._publish(("win", seg.name))

    def win_wait_open(self, seg, epoch: int) -> None:
        """Writer observed ``epoch >= k``: join the owner's open clock."""
        self._join_key(("win", seg.name))

    def win_put(self, seg, writer: int) -> None:
        """A put targets epoch ``done(writer)+1``; that epoch must be
        exposed, else the bytes land in a window the owner still reads."""
        k = seg.done(writer) + 1
        exposed = seg.epoch()
        if exposed < k:
            self._report(
                UNSYNC_WRITE,
                f"win.put({seg.name}, writer={writer})",
                f"put landing in unexposed epoch {k} (window exposes "
                f"epoch {exposed}) — wait_open was skipped",
                prior=f"owner exposure at epoch {exposed}")

    def win_commit(self, seg, writer: int, epoch: int) -> None:
        """Writer publishes ``done[writer] = epoch``."""
        if epoch > seg.epoch():
            self._report(
                UNSYNC_WRITE,
                f"win.commit({seg.name}, writer={writer})",
                f"commit publishes epoch {epoch} but the window only "
                f"exposes epoch {seg.epoch()}")
        elif seg.done(writer) >= epoch:
            self._report(
                UNSYNC_WRITE,
                f"win.commit({seg.name}, writer={writer})",
                f"repeated commit of epoch {epoch} (done counter "
                f"already at {seg.done(writer)})")
        self._publish(("win-done", seg.name, writer))

    def win_fence(self, seg, epoch: int) -> None:
        """Owner's fence completed: join every writer's commit clock."""
        for w in range(seg.nwriters):
            self._join_key(("win-done", seg.name, w))
        self._tick()

    def win_read(self, seg) -> None:
        """Owner reads the payload: only sound between ``fence(k)`` and
        ``epoch_open(k+1)``."""
        if seg.min_done() < seg.epoch():
            self._report(
                TORN_READ, f"win.read({seg.name})",
                f"owner read inside an open exposure epoch "
                f"(epoch {seg.epoch()}, min done {seg.min_done()}) — "
                f"writers may still be scattering into the payload")

    # -- watchdog-field sites (SharedState accessors call these) -----------

    def state_write(self, owner_endpoint: Optional[int], site: str) -> None:
        """Per-endpoint watchdog fields have exactly one writing
        process: the owning rank.  ``owner_endpoint`` is the endpoint
        the written field belongs to, or ``None`` for the domain abort
        record (supervisor-only)."""
        from repro.simmpi import transport as _transport
        writer = _transport.current_endpoint()
        if owner_endpoint is None:
            if writer is not None:
                self._report(
                    UNSYNC_WRITE, site,
                    f"domain abort record written by rank process "
                    f"endpoint {writer} — only the supervisor "
                    f"writes it")
        elif writer is not None and writer != owner_endpoint:
            self._report(
                UNSYNC_WRITE, site,
                f"endpoint {owner_endpoint}'s watchdog field written "
                f"by the process owning endpoint {writer} — "
                f"single-writer discipline broken",
                prior=f"owning process of endpoint {owner_endpoint}")
        self._publish(("state", site))

    # -- mailbox handoff sites (matching.py calls these) -------------------

    def env_stamp(self, env) -> None:
        """Sender-side: attach this actor's clock to the envelope."""
        env.clock = dict(self._tick())

    def env_join(self, clock: Optional[dict]) -> None:
        """Receiver-side: the matched envelope's delivery happens-before
        this consumption."""
        self._join(clock)


#: The process-wide sanitizer, or ``None`` when disabled.  Call sites
#: guard every hook with ``if _san.ACTIVE is not None`` — the whole
#: disabled-mode cost.  Installed at import when ``REPRO_TSAN=1`` (rank
#: processes inherit the instance across fork).
ACTIVE: Optional[Sanitizer] = None


def enabled() -> bool:
    """Is the sanitizer currently installed?"""
    return ACTIVE is not None


def set_tsan(on: bool) -> bool:
    """Install or remove the sanitizer; returns the previous state.

    Pools and windows size their shadow regions at construction, so
    enable the sanitizer *before* building the transport you want
    checked (the env var path does this naturally)."""
    global ACTIVE
    was = ACTIVE is not None
    if on and ACTIVE is None:
        ACTIVE = Sanitizer()
    elif not on:
        ACTIVE = None
    return was


def register_actor(name: str) -> Optional[str]:
    """Bind the calling thread to a logical actor name (no-op when
    disabled)."""
    san = ACTIVE
    return san.register_actor(name) if san is not None else None


def current_actor() -> Optional[str]:
    san = ACTIVE
    return san.actor() if san is not None else None


def reports() -> list[RaceReport]:
    """All :class:`RaceReport`\\ s recorded in this process so far."""
    san = ACTIVE
    return san.race_reports if san is not None else []


def clear_reports() -> None:
    san = ACTIVE
    if san is not None:
        san.clear()


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TSAN", "").strip().lower() in (
        "1", "true", "on", "yes")


if _env_enabled():  # pragma: no cover - exercised by the CI TSAN shard
    ACTIVE = Sanitizer()
