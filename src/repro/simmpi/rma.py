"""One-sided RMA verbs for persistent channels (procs backend).

The two-sided persistent engines pay mailbox rendezvous on every
replayed step: slot acquire, envelope match, prepost scatter.  But a
compiled :class:`~repro.schedule.indexplan.PairPlan` already tells each
sender *exactly where in the receiver's flat buffer* its bytes land —
so once the receiver exposes that buffer as an RMA *window*
(:class:`~repro.simmpi.shm.WindowSegment`), the sender can execute the
receiver's scatter plan **directly into remote memory**: the strided or
contiguous fast path becomes a single cross-process copy with no slot
ring, no envelope, and no per-message matching.  Per-epoch fences
replace rendezvous, so one fence amortizes over all pairs in a step.

Protocol (MPI post-start-complete-wait flavour, one window per
receiving rank):

* **Bootstrap** (once, over the ordinary two-sided channel): the
  receiver creates its window, moves its destination array's storage
  into the window payload, and ships each sender a
  :class:`WindowHandle` — segment name, geometry, the sender's
  ``done``-counter slot, and the receiver-side scatter plan for that
  pair.
* **epoch_open** (receiver, per step): store ``epoch = k``.  This is
  the exposure epoch — remote writes are now licensed.
* **wait_open + put + commit** (sender, per step): spin until
  ``epoch >= k`` (abort-aware, watchdog-visible), scatter the pair's
  bytes straight into the window payload, then store ``done[i] = k``
  to publish them.
* **fence** (receiver, per step): spin until ``min(done) >= k``.  The
  destination array *is* the window payload, so after the fence the
  step's data is simply there.

Seqlock-style torn-read safety: the receiver only reads its array
between ``fence(k)`` and ``epoch_open(k+1)``, and no sender writes in
that span (each is spinning on ``epoch >= k+1``) — so a reader
observes generation ``k`` in full, never a mix.

The spin waits have no cross-process condition variable to sleep on;
they back off on the job's :meth:`~repro.simmpi.matching.AbortFlag.
wait` (waking immediately on abort) and register a blocked-state
description so the deadlock watchdog sees RMA waits exactly like
mailbox waits.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import DeadlockError, ScheduleError
from repro.schedule.indexplan import PairPlan
from repro.simmpi import sanitize as _san
from repro.simmpi.matching import Mailbox
from repro.simmpi.shm import WindowSegment
from repro.util.counters import TRANSPORT_STATS

__all__ = ["WindowHandle", "ExposedWindow", "RemoteWindow"]

#: Backoff between shared-counter polls in epoch waits.  Short enough
#: that a steady-state step never stalls measurably, long enough that a
#: blocked rank does not burn a core.
RMA_POLL = 0.0002


@dataclass(frozen=True)
class WindowHandle:
    """Picklable bootstrap ticket: everything one sender needs to attach
    a receiver's window and write its pair directly.

    Shipped receiver -> sender exactly once over the ordinary two-sided
    channel when the persistent engines are constructed; after that the
    channel's data plane never touches the mailbox again.
    """

    name: str          #: shared-memory segment name
    nbytes: int        #: payload size (the receiver's flat buffer)
    dtype: str         #: element dtype (numpy dtype string)
    nwriters: int      #: total writers on this window
    writer: int        #: this sender's done-counter slot
    plan: PairPlan     #: receiver-side scatter plan for this pair


def _close_owner(seg: WindowSegment) -> None:
    seg.close()
    seg.unlink()


def _close_writer(seg: WindowSegment) -> None:
    seg.close()


class ExposedWindow:
    """Receiver side: one rank's destination buffer exposed for remote
    writes, plus the epoch verbs that sequence them."""

    def __init__(self, nbytes: int, dtype, nwriters: int,
                 mailbox: Mailbox):
        self._seg = WindowSegment(nbytes, nwriters)
        #: Typed flat view of the window payload — the new home of the
        #: destination array's consolidated base buffer.
        self.buffer = self._seg.data.view(np.dtype(dtype))
        self._mailbox = mailbox
        self._epoch = 0
        self._finalizer = weakref.finalize(self, _close_owner, self._seg)

    @property
    def name(self) -> str:
        return self._seg.name

    @property
    def epoch(self) -> int:
        return self._epoch

    def handle(self, writer: int, plan: PairPlan) -> WindowHandle:
        """The bootstrap ticket for writer slot ``writer``."""
        return WindowHandle(self._seg.name, self._seg.nbytes,
                            np.dtype(self.buffer.dtype).str,
                            self._seg.nwriters, writer, plan)

    def epoch_open(self) -> int:
        """Open the next exposure epoch: remote writes are licensed
        until the matching :meth:`fence` completes."""
        self._epoch += 1
        san = _san.ACTIVE
        if san is not None:
            san.win_open(self._seg, self._epoch)
        self._seg.set_epoch(self._epoch)
        return self._epoch

    def fence(self, *, timeout: float | None = None) -> None:
        """Block until every writer has committed the current epoch.

        After this returns the window payload holds generation
        ``epoch`` in full; the receiver may read it until the next
        :meth:`epoch_open`.
        """
        k = self._epoch
        seg = self._seg
        if seg.min_done() >= k:
            san = _san.ACTIVE
            if san is not None:
                san.win_fence(seg, k)
            TRANSPORT_STATS.add("rma_fences")
            return
        desc = f"rma_fence(window={seg.name}, epoch={k})"
        abort = self._mailbox.abort
        deadline = None if timeout is None else time.monotonic() + timeout
        self._mailbox.set_block_desc(desc)
        try:
            while seg.min_done() < k:
                if abort.is_set():
                    raise DeadlockError(
                        f"rank {self._mailbox.rank} aborted while blocked "
                        f"in {desc}: {abort.reason}",
                        blocked=abort.blocked_dump)
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"rank {self._mailbox.rank}: {desc} timed out")
                abort.wait(RMA_POLL)
        finally:
            self._mailbox.set_block_desc(None)
        san = _san.ACTIVE
        if san is not None:
            san.win_fence(seg, k)
        TRANSPORT_STATS.add("rma_fences")
        self._mailbox.note_progress()

    def check_read(self) -> None:
        """``REPRO_TSAN`` read-site hook: record a torn-seqlock-read
        report if the payload is read while an exposure epoch is still
        open (between ``epoch_open`` and the matching ``fence``).
        No-op when the sanitizer is off."""
        san = _san.ACTIVE
        if san is not None:
            san.win_read(self._seg)

    def close(self) -> None:
        """Tear the window down (close + unlink; owner side)."""
        self._finalizer()


class RemoteWindow:
    """Sender side: an attached peer window plus the put/commit verbs
    that execute the receiver's scatter plan into it."""

    def __init__(self, handle: WindowHandle, mailbox: Mailbox):
        self._seg = WindowSegment.attach(handle.name, handle.nbytes,
                                         handle.nwriters)
        self.buffer = self._seg.data.view(np.dtype(handle.dtype))
        self._plan = handle.plan
        self._writer = handle.writer
        self._mailbox = mailbox
        self._finalizer = weakref.finalize(self, _close_writer, self._seg)

    @property
    def plan(self) -> PairPlan:
        return self._plan

    def wait_open(self, epoch: int, *, timeout: float | None = None) -> None:
        """Spin until the owner has opened exposure epoch ``epoch``."""
        seg = self._seg
        if seg.epoch() >= epoch:
            san = _san.ACTIVE
            if san is not None:
                san.win_wait_open(seg, epoch)
            return
        TRANSPORT_STATS.add("rma_epoch_waits")
        desc = f"rma_put(window={seg.name}, epoch={epoch})"
        abort = self._mailbox.abort
        deadline = None if timeout is None else time.monotonic() + timeout
        self._mailbox.set_block_desc(desc)
        try:
            while seg.epoch() < epoch:
                if abort.is_set():
                    raise DeadlockError(
                        f"rank {self._mailbox.rank} aborted while blocked "
                        f"in {desc}: {abort.reason}",
                        blocked=abort.blocked_dump)
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"rank {self._mailbox.rank}: {desc} timed out")
                abort.wait(RMA_POLL)
        finally:
            self._mailbox.set_block_desc(None)
        san = _san.ACTIVE
        if san is not None:
            san.win_wait_open(seg, epoch)
        self._mailbox.note_progress()

    def put(self, values: np.ndarray) -> int:
        """Scatter one packed pair buffer straight into the remote
        window via the receiver's compiled plan.  Returns the element
        count.  Must only run inside an open exposure epoch
        (:meth:`wait_open`)."""
        san = _san.ACTIVE
        if san is not None:
            san.win_put(self._seg, self._writer)
        n = self._plan.scatter(self.buffer, values)
        TRANSPORT_STATS.add("rma_puts")
        TRANSPORT_STATS.add("rma_put_bytes", n * self.buffer.itemsize)
        return n

    def commit(self, epoch: int) -> None:
        """Publish this writer's puts for ``epoch`` (store the done
        counter the owner's fence spins on)."""
        san = _san.ACTIVE
        if san is not None:
            san.win_commit(self._seg, self._writer, epoch)
        self._seg.set_done(self._writer, epoch)

    def close(self) -> None:
        """Detach from the window (close only; the owner unlinks)."""
        self._finalizer()


def check_handle(handle: WindowHandle, expected_size: int) -> WindowHandle:
    """Validate a bootstrap ticket against the sender's own pair plan:
    both sides compiled the same schedule, so the element counts must
    agree — a mismatch means the jobs disagree on mode or schedule."""
    if not isinstance(handle, WindowHandle):
        raise ScheduleError(
            f"RMA bootstrap expected a WindowHandle, got "
            f"{type(handle).__name__} — peer is not in one-sided mode?")
    if handle.plan.size != expected_size:
        raise ScheduleError(
            f"RMA bootstrap plan covers {handle.plan.size} elements, "
            f"sender's pair expects {expected_size} — schedule mismatch")
    return handle
