"""Receive status objects."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Status:
    """Metadata about a matched message (MPI_Status analogue)."""

    source: int
    tag: int
    nbytes: int
