"""The ``procs`` execution backend: ranks as real processes.

Every rank of a :func:`~repro.simmpi.runner.run_spmd` job (or of every
job of a :func:`~repro.simmpi.runner.run_coupled` launch — one shared
*domain*) runs in its own forked process, so packing, protocol work and
scatters execute on separate GILs and a redistribution's copy phase
scales with cores instead of serializing in one interpreter.

Data plane: payload bytes travel through the domain's
:class:`~repro.simmpi.shm.SegmentPool` — per-sender rings of fixed-size
shared-memory slots — while a small control message (context, source,
tag, payload kind, slot index) rides an unbounded per-endpoint
``multiprocessing`` queue.  Sends therefore never block, exactly like
the threads backend: a full slot ring degrades to shipping the payload
inline through the queue (counted, never wrong).  On the receive side a
per-process *pump thread* replays control messages into the rank's
ordinary :class:`~repro.simmpi.matching.Mailbox`, handing array
payloads over as lent views of the shared slot — so a preposted
recv-into-destination sink scatters **straight out of shared memory**
into the destination array, with no staging buffer, and the slot is
released the moment the mailbox has consumed it.

Control plane: the parent process supervises.  A
:class:`~repro.simmpi.shm.SharedState` struct carries each endpoint's
progress counter and blocked-state record (written by the rank's
mailbox callbacks); the supervisor applies the same stall rule as the
threads watchdog and aborts a deadlocked domain by raising the shared
abort flag *and* posting an ``ABORT`` control message to every
endpoint's queue, which the pump turns into the event-driven
:meth:`~repro.simmpi.matching.AbortFlag.set` wake-up.  Rank crashes
propagate the same way: the failing rank reports to the supervisor,
which aborts every peer so nobody waits for messages that will never
come.

Rendezvous: ``NameService.accept/connect`` inside a procs rank routes
to the parent's *broker thread* (shared in-memory conditions cannot
cross processes).  The broker pairs accepts with connects, allocates
intercommunicator contexts from a reserved range, and replies with the
peer's endpoint list — picklable ints, no ``Raw`` job handles.  Context
ranges are partitioned so child-side ``dup``/``split`` allocations can
never collide across processes.

Limitations (documented, enforced with clear errors where possible):
``payload.Raw`` process-local handles cannot cross a process boundary,
and the ``fork`` start method is required (``fn`` and its closures are
inherited, not pickled — results and exceptions are pickled back).
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue as _queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import CommunicatorError, SpmdError
from repro.simmpi import communicator as _comm_mod
from repro.simmpi import payload as _payload
from repro.simmpi import sanitize as _san
from repro.simmpi import shm
from repro.simmpi import transport as _transport
from repro.simmpi.matching import Envelope, Mailbox
from repro.simmpi.transport import EndpointRemoteGroup, Transport
from repro.util.counters import TRANSPORT_STATS

__all__ = ["run_spmd_procs", "run_coupled_procs", "ProcRuntime"]

#: Child-side context allocators are rebased to ``(endpoint+1) << 20``
#: after fork; the broker hands out intercomm contexts from ``1 << 40``.
#: Pre-fork (parent) allocations stay far below either range.
CHILD_CTX_SHIFT = 20
BROKER_CTX_BASE = 1 << 40

_SUPERVISE_TICK = 0.05


def _fork_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" not in methods:  # pragma: no cover - non-POSIX hosts
        raise RuntimeError(
            "the procs backend requires the 'fork' start method "
            f"(available: {methods}); use backend='threads'")
    return multiprocessing.get_context("fork")


# -- domain description (built in the parent, inherited over fork) -----------


@dataclass
class JobSpec:
    name: str
    n: int
    base: int            # first global endpoint of this job
    world_context: int


class DomainSpec:
    """Everything the supervisor and every rank process share."""

    def __init__(self, ctx, jobs: Sequence[JobSpec], *,
                 slot_bytes: int, slots_per_endpoint: int):
        self.jobs = list(jobs)
        self.endpoints = sum(j.n for j in jobs)
        self.queues = [ctx.Queue() for _ in range(self.endpoints)]
        self.results = ctx.Queue()
        self.broker_q = ctx.Queue()
        self.pool = shm.SegmentPool(
            self.endpoints, slot_bytes=slot_bytes,
            slots_per_endpoint=slots_per_endpoint)
        self.state = shm.SharedState(self.endpoints)

    def job_of(self, endpoint: int) -> JobSpec:
        for j in self.jobs:
            if j.base <= endpoint < j.base + j.n:
                return j
        raise ValueError(f"endpoint {endpoint} out of range")

    def label(self, endpoint: int, *, qualified: bool) -> Any:
        """Watchdog/failure key for one endpoint: the plain job rank for
        single-job domains, ``"{job} rank {r}"`` for coupled ones."""
        j = self.job_of(endpoint)
        r = endpoint - j.base
        return f"{j.name} rank {r}" if qualified else r

    def cleanup(self) -> None:
        for q in self.queues + [self.results, self.broker_q]:
            q.close()
            q.join_thread()
        self.pool.close()
        self.pool.unlink()
        self.state.close()
        self.state.unlink()


# -- rank-process side -------------------------------------------------------


class ProcTransport(Transport):
    """Child-side transport: one local mailbox, shared-slot delivery out."""

    backend = "procs"
    isolating = False
    rma_capable = True

    def __init__(self, runtime: "ProcRuntime", abort,
                 progress: Callable[[], None],
                 block_state: Callable[[int, str | None], None]):
        self._rt = runtime
        self._own = Mailbox(runtime.job_rank, abort,
                            progress=progress, block_state=block_state)

    def mailbox(self, job_rank: int) -> Mailbox:
        if job_rank != self._rt.job_rank:
            raise CommunicatorError(
                f"procs backend: rank {self._rt.job_rank} cannot access "
                f"the mailbox of rank {job_rank} (different process)")
        return self._own

    def deliver(self, job_rank: int, env: Envelope, live=None) -> None:
        self.deliver_endpoint(self._rt.job_base + job_rank, env, live=live)

    def deliver_endpoint(self, endpoint: int, env: Envelope,
                         live=None) -> None:
        rt = self._rt
        if endpoint == rt.endpoint:
            if isinstance(env.payload, _payload.PickledWire):
                # self-delivery of a generic object: the blob *is* the
                # isolation copy; rehydrate so the receiver sees a value
                env.payload = pickle.loads(env.payload.blob)
            elif isinstance(env.payload, _payload.Raw):
                env.payload = env.payload.value
            self._own.deliver(env, live=live)
            return
        obj = live if live is not None else env.payload
        if isinstance(obj, _payload.Raw):
            raise CommunicatorError(
                "payload.Raw wraps a process-local handle; it cannot be "
                "sent to another process (procs backend)")
        if isinstance(obj, _payload.PickledWire):
            kind, meta, buf = shm.PICKLE, None, \
                np.frombuffer(obj.blob, dtype=np.uint8)
            inline = None
        else:
            kind, meta, buf, inline = shm.encode_payload(obj)
        slot = -1
        if buf is not None:
            nbytes = buf.nbytes
            if nbytes > shm.INLINE_MAX and nbytes <= rt.pool.slot_bytes:
                got = rt.pool.acquire(rt.endpoint)
                if got is not None:
                    slot = got
            elif nbytes > rt.pool.slot_bytes:
                rt.pool.stats.add("oversize")
            if slot >= 0:
                dst = rt.pool.slot_view(
                    slot, nbytes,
                    dtype=buf.dtype if kind == shm.ND else None)
                if kind == shm.ND:
                    np.copyto(dst.view(buf.dtype).reshape(buf.shape), buf)
                else:
                    dst[:] = buf
                inline = None
                TRANSPORT_STATS.add("shm_slot_msgs")
                TRANSPORT_STATS.add("shm_slot_bytes", nbytes)
            else:
                # inline fallback: tiny payload, full ring, or oversize
                if kind == shm.ND:
                    inline = np.ascontiguousarray(buf).tobytes()
                else:
                    inline = buf.tobytes()
                if nbytes > shm.INLINE_MAX:
                    rt.pool.stats.add("allocations")
                    rt.pool.stats.add("allocated_bytes", nbytes)
                TRANSPORT_STATS.add("shm_inline_msgs")
                TRANSPORT_STATS.add("shm_inline_bytes", nbytes)
        if env.release is not None:
            # the wire (slot or inline blob) now owns the bytes: the
            # sender's pooled buffer is free to be reused immediately
            env.release()
        msg = (shm.MSG, env.context, env.source, env.tag, env.nbytes,
               kind, meta, slot, inline)
        san = _san.ACTIVE
        if san is not None:
            # wire piggyback: the sender's vector clock plus the slot's
            # shadow generation ride as an optional tenth field (the
            # nine-field format is untouched when the sanitizer is off)
            msg = msg + (san.slot_publish(rt.pool, slot),)
        rt.spec.queues[endpoint].put(msg)
        self._rt.bump_progress()


class ProcRuntime:
    """Per-rank-process runtime handle (``transport.current_runtime()``)."""

    def __init__(self, spec: DomainSpec, endpoint: int, job_index: int):
        self.spec = spec
        self.endpoint = endpoint
        self.jobspec = spec.jobs[job_index]
        self.job_base = self.jobspec.base
        self.job_rank = endpoint - self.job_base
        self.pool = spec.pool
        self.rdv: _queue.Queue = _queue.Queue()
        self.job = None          # set by _child_main
        self.transport: Optional[ProcTransport] = None

    # -- wiring ------------------------------------------------------------

    def make_transport(self, n: int, abort, progress, block_state
                       ) -> ProcTransport:
        def prog():
            progress()
            self.bump_progress()

        def blocked(rank: int, desc: str | None):
            block_state(rank, desc)
            self.spec.state.set_blocked(self.endpoint, desc)

        self.transport = ProcTransport(self, abort, prog, blocked)
        return self.transport

    def bump_progress(self) -> None:
        self.spec.state.bump(self.endpoint)

    # -- rendezvous (NameService over the parent broker) -------------------

    def rendezvous(self, mode: str, name: str, comm, timeout: float):
        if comm.rank == 0:
            endpoints = [self.job_base + r for r in comm.job_ranks]
            self.spec.broker_q.put(("RDV", mode, name, endpoints,
                                    self.endpoint))
            info = self._wait_rdv(name, timeout)
        else:
            info = None
        info = comm.bcast(info, root=0)
        if info[0] == "ERR":
            raise CommunicatorError(info[1])
        recv_ctx, send_ctx, remote_eps = info
        from repro.simmpi.intercomm import Intercommunicator
        group = EndpointRemoteGroup(self.transport, remote_eps)
        return Intercommunicator(comm, recv_ctx, send_ctx, group,
                                 tuple(range(len(remote_eps))))

    def _wait_rdv(self, name: str, timeout: float):
        # Deliberately *not* registered as blocked: like the threads
        # NameService, a rank waiting for its coupling peer must not
        # trip the deadlock watchdog — the rendezvous timeout below is
        # the failure path for a peer that never shows up.
        from repro.errors import DeadlockError
        desc = f"rendezvous({name!r})"
        deadline = time.monotonic() + (timeout if timeout and timeout > 0
                                       else 3600.0)
        while True:
            if self.job is not None and self.job.abort.is_set():
                raise DeadlockError(
                    f"rank {self.job_rank} aborted while blocked in "
                    f"{desc}: {self.job.abort.reason}",
                    blocked=self.job.abort.blocked_dump)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"{desc} timed out")
            try:
                return self.rdv.get(timeout=min(0.1, remaining))
            except _queue.Empty:
                continue

    # -- pump --------------------------------------------------------------

    def start_pump(self) -> None:
        t = threading.Thread(target=self._pump_loop, daemon=True,
                             name=f"pump-ep{self.endpoint}")
        t.start()

    def _pump_loop(self) -> None:
        q = self.spec.queues[self.endpoint]
        mailbox = self.transport.mailbox(self.job_rank)
        _san.register_actor(f"ep{self.endpoint}.pump")
        while True:
            msg = q.get()
            verb = msg[0]
            if verb == shm.STOP:
                return
            if verb == shm.ABORT:
                _, reason, dump = msg
                self.job.abort.set(reason, dump)
                continue
            if verb == shm.RDV_REPLY:
                self.rdv.put(msg[1])
                continue
            (_, context, source, tag, nbytes, kind, meta, slot, inline,
             *extra) = msg
            san = _san.ACTIVE
            if san is not None and extra:
                # happens-before join with the sender, plus the
                # generation check that catches slot reuse in flight
                san.slot_consume(self.spec.pool, slot, extra[0])
            raw = (self.spec.pool.slot_view(
                       slot, nbytes,
                       dtype=np.dtype(meta[0]) if kind == shm.ND else None)
                   if slot >= 0 else inline)
            value = shm.decode_payload(kind, meta, raw, inline)
            env = Envelope(context, source, tag, None, nbytes)
            if isinstance(value, np.ndarray):
                # lent view of the shared slot (or inline blob): an armed
                # prepost sink scatters straight out of shared memory
                mailbox.deliver(env, live=value)
            else:
                env.payload = value
                mailbox.deliver(env)
            if slot >= 0:
                self.spec.pool.release(slot)


def _safe_dumps(obj: Any) -> bytes:
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 - degraded but informative
        return pickle.dumps(RuntimeError(
            f"unpicklable rank result/exception {type(obj).__name__}: "
            f"{obj!r} ({exc})"))


def _safe_loads(blob: bytes) -> Any:
    try:
        return pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001
        return RuntimeError(f"could not unpickle rank payload: {exc}")


def _child_main(spec: DomainSpec, endpoint: int, job_index: int,
                fn: Callable[..., Any], args: tuple, kwargs: dict) -> None:
    """Entry point of one rank process (runs under fork)."""
    from repro.simmpi.runner import Job

    jobspec = spec.jobs[job_index]
    rt = ProcRuntime(spec, endpoint, job_index)
    # partition the context-id space so child-side dup/split can never
    # collide with another process's allocations or the broker's range
    _comm_mod._next_context = (endpoint + 1) << CHILD_CTX_SHIFT
    _transport.set_current_runtime(rt)
    _san.register_actor(f"ep{endpoint}")
    job = Job(jobspec.n, name=jobspec.name,
              transport_factory=rt.make_transport)
    rt.job = job
    rt.start_pump()
    comm = job.world(rt.job_rank, jobspec.world_context)
    try:
        result = fn(comm, *args, **kwargs)
        san = _san.ACTIVE
        if san is not None and san.race_reports:
            # a rank that finished cleanly but accumulated sanitizer
            # reports fails: the REPRO_TSAN=1 CI shard is thereby a
            # whole-suite zero-report proof
            reps = san.race_reports
            raise RuntimeError(
                f"race sanitizer recorded {len(reps)} report(s) in "
                f"rank {rt.job_rank}: " + " | ".join(
                    f"[{r.kind}] {r.site}: {r.detail}"
                    for r in reps[:3]))
        blob = _safe_dumps(result)
        spec.state.set_finished(endpoint)
        spec.results.put(("DONE", endpoint, blob))
    except BaseException as exc:  # noqa: BLE001 - reported via SpmdError
        spec.state.set_finished(endpoint)
        spec.results.put(("FAIL", endpoint, _safe_dumps(exc)))


# -- parent / supervisor side ------------------------------------------------


def _broker_loop(spec: DomainSpec) -> None:
    """Pair accept/connect rendezvous requests; allocate contexts."""
    ctx_counter = itertools.count(BROKER_CTX_BASE)
    waiting: dict[str, tuple[str, list[int], int]] = {}
    while True:
        msg = spec.broker_q.get()
        if msg[0] == shm.STOP:
            return
        _, mode, name, endpoints, reply_ep = msg
        other = waiting.get(name)
        if other is None or other[0] == mode:
            if other is not None and other[0] == mode:
                # mirror the threads NameService "already accepting"
                # error for double-accepts; double-connects just queue
                if mode == "accept":
                    spec.queues[reply_ep].put(
                        (shm.RDV_REPLY,
                         ("ERR", f"service {name!r} is already accepting")))
                    continue
            waiting[name] = (mode, list(endpoints), reply_ep)
            continue
        omode, oendpoints, oreply = waiting.pop(name)
        if mode == "accept":
            acc_eps, acc_reply = endpoints, reply_ep
            con_eps, con_reply = oendpoints, oreply
        else:
            acc_eps, acc_reply = oendpoints, oreply
            con_eps, con_reply = endpoints, reply_ep
        acc_ctx = next(ctx_counter)   # acceptor receives on this
        con_ctx = next(ctx_counter)   # connector receives on this
        spec.queues[acc_reply].put(
            (shm.RDV_REPLY, (acc_ctx, con_ctx, con_eps)))
        spec.queues[con_reply].put(
            (shm.RDV_REPLY, (con_ctx, acc_ctx, acc_eps)))


def _abort_all(spec: DomainSpec, pending: set[int], reason: str,
               dump: dict) -> None:
    spec.state.set_abort(reason)
    for ep in pending:
        spec.queues[ep].put((shm.ABORT, reason, dump))


def _supervise_domain(spec: DomainSpec, procs: dict[int, Any],
                      deadlock_timeout: float, *, qualified: bool
                      ) -> tuple[dict[int, bytes], dict[int, bytes]]:
    """Collect DONE/FAIL reports, watch for deadlocks and dead processes.

    Returns ``(results, failures)`` keyed by endpoint (pickled blobs).
    """
    results: dict[int, bytes] = {}
    failures: dict[int, bytes] = {}
    pending = set(procs)
    aborted = False
    stall_deadline: Optional[float] = None
    stall_progress = -1

    def labeled(dump: dict[int, str]) -> dict:
        return {spec.label(ep, qualified=qualified): desc
                for ep, desc in dump.items()}

    while pending:
        try:
            verb, ep, blob = spec.results.get(timeout=_SUPERVISE_TICK)
        except _queue.Empty:
            verb = None
        if verb is not None:
            pending.discard(ep)
            if verb == "DONE":
                results[ep] = blob
            else:
                failures[ep] = blob
                if not aborted:
                    aborted = True
                    exc = _safe_loads(blob)
                    key = spec.label(ep, qualified=qualified)
                    what = (key if qualified else f"rank {key}")
                    _abort_all(spec, pending,
                               f"{what} raised "
                               f"{type(exc).__name__}: {exc}", {})
            continue
        # dead-process check (after draining the results queue)
        dead = [ep for ep in pending if not procs[ep].is_alive()]
        if dead and spec.results.empty():
            for ep in dead:
                pending.discard(ep)
                code = procs[ep].exitcode
                failures[ep] = _safe_dumps(RuntimeError(
                    f"rank process exited without reporting "
                    f"(exit code {code})"))
            if not aborted:
                aborted = True
                keys = [spec.label(ep, qualified=qualified) for ep in dead]
                _abort_all(spec, pending,
                           f"rank process(es) {keys} died", {})
            continue
        # watchdog: every unfinished endpoint blocked + no progress
        progress = spec.state.total_progress()
        dump = spec.state.stalled()
        if dump:
            if stall_deadline is None or progress != stall_progress:
                stall_progress = progress
                stall_deadline = time.monotonic() + deadlock_timeout
            elif time.monotonic() >= stall_deadline and not aborted:
                aborted = True
                _abort_all(spec, pending,
                           "deadlock detected by watchdog", labeled(dump))
        else:
            stall_deadline = None
    return results, failures


def _launch(jobs: Sequence[tuple[str, int, Callable[..., Any], tuple, dict]],
            *, deadlock_timeout: float, opts: Optional[dict]
            ) -> tuple[DomainSpec, dict[int, bytes], dict[int, bytes]]:
    """Fork one process per rank of every job; supervise to completion."""
    opts = dict(opts or {})
    slot_bytes = int(opts.pop("slot_bytes", 1 << 18))
    slots_per_endpoint = int(opts.pop("slots_per_endpoint", 8))
    if opts:
        raise ValueError(f"unknown transport_opts: {sorted(opts)}")
    ctx = _fork_context()
    specs = []
    base = 0
    from repro.simmpi.communicator import allocate_context
    for name, n, _fn, _args, _kwargs in jobs:
        if n < 1:
            raise ValueError(f"job {name!r} needs at least 1 rank, got {n}")
        specs.append(JobSpec(name=name, n=n, base=base,
                             world_context=allocate_context()))
        base += n
    spec = DomainSpec(ctx, specs, slot_bytes=slot_bytes,
                      slots_per_endpoint=slots_per_endpoint)
    broker = threading.Thread(target=_broker_loop, args=(spec,),
                              daemon=True, name="procs-broker")
    broker.start()
    procs: dict[int, Any] = {}
    try:
        for ji, (name, n, fn, args, kwargs) in enumerate(jobs):
            for r in range(n):
                ep = specs[ji].base + r
                p = ctx.Process(
                    target=_child_main, args=(spec, ep, ji, fn, args, kwargs),
                    name=f"{name}-rank{r}", daemon=True)
                procs[ep] = p
        for p in procs.values():
            p.start()
        results, failures = _supervise_domain(
            spec, procs, deadlock_timeout, qualified=len(specs) > 1)
        for p in procs.values():
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - stuck rank teardown
                p.terminate()
                p.join(timeout=1.0)
        return spec, results, failures
    finally:
        spec.broker_q.put((shm.STOP,))
        broker.join(timeout=2.0)
        for p in procs.values():
            if p.is_alive():  # pragma: no cover
                p.terminate()
        spec.cleanup()


def run_spmd_procs(n: int, fn: Callable[..., Any], args: tuple, kwargs: dict,
                   *, name: str = "job", deadlock_timeout: float = 5.0,
                   opts: Optional[dict] = None) -> list[Any]:
    """Procs-backend implementation of :func:`repro.simmpi.run_spmd`."""
    spec, results, failures = _launch(
        [(name, n, fn, args, kwargs)],
        deadlock_timeout=deadlock_timeout, opts=opts)
    if failures:
        raise SpmdError({ep: _safe_loads(blob)
                         for ep, blob in failures.items()})
    return [_safe_loads(results[r]) for r in range(n)]


def run_coupled_procs(jobs, *, deadlock_timeout: float = 10.0,
                      opts: Optional[dict] = None) -> dict[str, list[Any]]:
    """Procs-backend implementation of :func:`repro.simmpi.run_coupled`."""
    launch = [(name, n, fn, tuple(args), {}) for name, n, fn, args in jobs]
    spec, results, failures = _launch(
        launch, deadlock_timeout=deadlock_timeout, opts=opts)
    if failures:
        raise SpmdError({spec.label(ep, qualified=True): _safe_loads(blob)
                         for ep, blob in failures.items()})
    out: dict[str, list[Any]] = {}
    for js in spec.jobs:
        out[js.name] = [
            _safe_loads(results[js.base + r]) if js.base + r in results
            else None
            for r in range(js.n)]
    return out


def slot_stats() -> dict[str, int]:
    """This rank process's segment-pool counters (procs backend only)."""
    rt = _transport.current_runtime()
    if rt is None:
        return {}
    snap = rt.pool.stats.snapshot()
    snap.setdefault("allocations", 0)
    return snap
