"""Intercommunicators and the name service (MPI Connect/Accept analogue).

Two independently launched SPMD jobs couple by rendezvousing on a
service name: one side calls :meth:`NameService.accept`, the other
:meth:`NameService.connect`.  Each side gets an
:class:`Intercommunicator` whose point-to-point operations address the
*remote* group's ranks — exactly the transport the paper's paired M×N
components (Fig. 3) and distributed frameworks need.

Context ids for the two directions are allocated by the accepting side
and shipped through the rendezvous slot, so intercomm traffic can never
collide with either job's intra-communicators.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import CommunicatorError
from repro.simmpi import payload
from repro.simmpi import transport as _transport
from repro.simmpi.communicator import Communicator, allocate_context
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.matching import Envelope, Mailbox
from repro.simmpi.request import Request
from repro.simmpi.status import Status
from repro.simmpi.transport import JobRemoteGroup, RemoteGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.runner import Job


@dataclass
class _Endpoint:
    """One side's contribution to a rendezvous."""

    job: "Job"
    job_ranks: tuple[int, ...]
    recv_context: int  # context this side matches on


class NameService:
    """In-memory rendezvous registry pairing accept/connect calls.

    A single instance is shared by all jobs of a coupled run (pass it to
    both ``fn``s, or use the module-level :data:`default_nameservice`).
    Multiple sequential connections may reuse the same name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._conds: dict[str, threading.Condition] = {}
        self._accepting: dict[str, _Endpoint] = {}
        self._reply: dict[str, _Endpoint] = {}

    def _cond(self, name: str) -> threading.Condition:
        with self._lock:
            if name not in self._conds:
                self._conds[name] = threading.Condition()
            return self._conds[name]

    def accept(self, name: str, comm: Communicator,
               *, timeout: float = 30.0) -> "Intercommunicator":
        """Collective over ``comm``: publish ``name`` and wait for a
        connector.  Returns the intercommunicator on every rank."""
        runtime = _transport.current_runtime()
        if runtime is not None:
            # procs backend: shared in-process conditions cannot cross
            # ranks — rendezvous through the supervisor's broker thread
            return runtime.rendezvous("accept", name, comm, timeout)
        cond = self._cond(name)
        if comm.rank == 0:
            here = _Endpoint(comm.job, comm.job_ranks, allocate_context())
            peer_ctx = allocate_context()
            with cond:
                if name in self._accepting:
                    raise CommunicatorError(
                        f"service {name!r} is already accepting")
                self._accepting[name] = here
                # Stash the context the connecting side will receive on.
                self._reply[name + ".peer_ctx"] = _Endpoint(
                    comm.job, comm.job_ranks, peer_ctx)
                cond.notify_all()
                ok = cond.wait_for(lambda: name in self._reply, timeout=timeout)
                if not ok:
                    self._accepting.pop(name, None)
                    self._reply.pop(name + ".peer_ctx", None)
                    raise TimeoutError(f"accept({name!r}) timed out")
                remote = self._reply.pop(name)
                self._accepting.pop(name, None)
            info = (here.recv_context, peer_ctx, remote.job, remote.job_ranks)
        else:
            info = None
        recv_ctx, send_ctx, remote_job, remote_ranks = _bcast_handle(comm, info)
        return Intercommunicator(comm, recv_ctx, send_ctx,
                                 remote_job, remote_ranks)

    def connect(self, name: str, comm: Communicator,
                *, timeout: float = 30.0) -> "Intercommunicator":
        """Collective over ``comm``: join the acceptor waiting on ``name``."""
        runtime = _transport.current_runtime()
        if runtime is not None:
            return runtime.rendezvous("connect", name, comm, timeout)
        cond = self._cond(name)
        if comm.rank == 0:
            with cond:
                ok = cond.wait_for(lambda: name in self._accepting,
                                   timeout=timeout)
                if not ok:
                    raise TimeoutError(f"connect({name!r}) timed out")
                remote = self._accepting[name]
                peer = self._reply.pop(name + ".peer_ctx")
                # Hand the acceptor our endpoint; our recv context was
                # allocated by the acceptor (peer.recv_context).
                self._reply[name] = _Endpoint(
                    comm.job, comm.job_ranks, peer.recv_context)
                cond.notify_all()
            info = (peer.recv_context, remote.recv_context,
                    remote.job, remote.job_ranks)
        else:
            info = None
        recv_ctx, send_ctx, remote_job, remote_ranks = _bcast_handle(comm, info)
        return Intercommunicator(comm, recv_ctx, send_ctx,
                                 remote_job, remote_ranks)


def _bcast_handle(comm: Communicator, info: Any) -> Any:
    """Broadcast a tuple containing process-local handles (Job objects)
    without the copy/pickle path."""
    wrapped = payload.Raw(info) if info is not None else None
    got = comm.bcast(wrapped, root=0)
    return got.value if isinstance(got, payload.Raw) else got


#: Process-wide default rendezvous registry.
default_nameservice = NameService()


class Intercommunicator:
    """Point-to-point channel between two jobs' rank groups.

    ``send(obj, dest)`` addresses rank ``dest`` of the *remote* group;
    ``recv(source)`` matches messages from remote rank ``source``.  The
    local intra-communicator remains available as :attr:`local_comm`.
    """

    def __init__(self, local_comm: Communicator, recv_context: int,
                 send_context: int, remote: Any,
                 remote_job_ranks: tuple[int, ...] = ()):
        self.local_comm = local_comm
        self._recv_context = recv_context
        self._send_context = send_context
        if isinstance(remote, RemoteGroup):
            self._remote = remote
        else:
            # historical signature: (remote_job, remote_job_ranks)
            self._remote = JobRemoteGroup(remote, tuple(remote_job_ranks))

    # -- identity ---------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank in the local group."""
        return self.local_comm.rank

    @property
    def local_size(self) -> int:
        return self.local_comm.size

    @property
    def remote_size(self) -> int:
        return self._remote.size

    @property
    def recv_context(self) -> int:
        """The context id this side matches incoming traffic on —
        public so multi-stream receivers (the PRMI serve loop) can
        compose :meth:`wait_any` specs mixing this intercommunicator
        with intra-communicator contexts."""
        return self._recv_context

    def _my_mailbox(self) -> Mailbox:
        job_rank = self.local_comm.job_ranks[self.local_comm.rank]
        return self.local_comm.job.transport.mailbox(job_rank)

    # -- point-to-point -----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.remote_size):
            raise CommunicatorError(
                f"remote rank {dest} out of range (remote size "
                f"{self.remote_size})")
        data, nbytes, release, live = payload.wire_parts(
            obj, isolate=self.local_comm.job.transport.isolating)
        self.local_comm.job.counters.add("inter_msgs")
        self.local_comm.job.counters.add("inter_bytes", nbytes)
        self._remote.deliver(
            dest,
            Envelope(self._send_context, self.local_comm.rank, tag,
                     data, nbytes, release=release),
            live=live)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             *, timeout: float | None = None,
             return_status: bool = False) -> Any:
        env = self._my_mailbox().wait_match(
            self._recv_context, source, tag, timeout=timeout)
        if return_status:
            return env.payload, Status(env.source, env.tag, env.nbytes)
        return env.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request(value=None)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        def completer(timeout: float | None) -> tuple[Any, Status]:
            env = self._my_mailbox().wait_match(
                self._recv_context, source, tag, timeout=timeout)
            return env.payload, Status(env.source, env.tag, env.nbytes)
        return Request(completer)

    def wait_any(self, specs, *, timeout: float | None = None) -> Envelope:
        """Block until a message matches any ``(context, source, tag)``
        spec and return its :class:`~repro.simmpi.matching.Envelope`.

        Contexts may name this intercommunicator's :attr:`recv_context`
        or any intra-communicator context of the same rank — one blocked
        wait drains every ingress stream an event-driven server watches
        (see :class:`repro.prmi.serving.ServerLoop`).
        """
        return self._my_mailbox().wait_match_any(specs, timeout=timeout)

    def iprobe(self, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> Optional[Status]:
        env = self._my_mailbox().probe(self._recv_context, source, tag)
        if env is None:
            return None
        return Status(env.source, env.tag, env.nbytes)

    def prepost_recv(self, sink, source: int = ANY_SOURCE,
                     tag: int = ANY_TAG):
        """Arm a preposted receive from remote rank ``source``: a
        matching send writes its payload straight through ``sink`` (no
        staging buffer).  Returns the
        :class:`~repro.simmpi.matching.PrepostSlot`."""
        if source != ANY_SOURCE and not (0 <= source < self.remote_size):
            raise CommunicatorError(
                f"remote rank {source} out of range (remote size "
                f"{self.remote_size})")
        return self._my_mailbox().prepost(
            self._recv_context, source, tag, sink)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Intercommunicator(local {self.rank}/{self.local_size}, "
                f"remote size {self.remote_size})")


def couple_jobs(src_job: "Job", dst_job: "Job",
                ) -> tuple[list[Intercommunicator], list[Intercommunicator]]:
    """Directly construct paired intercommunicators between two jobs.

    The name-service rendezvous needs every rank running on its own
    thread; deterministic single-threaded harnesses (transport tests,
    the A7 steady-state benchmark) instead build the endpoints by hand.
    Returns one intercommunicator per rank of each job
    (``src_inters[i]`` talks to ``dst_inters[j]`` and vice versa) with
    properly isolated contexts — messaging semantics are identical to a
    rendezvous-built pair.
    """
    ctx_src = allocate_context()   # src ranks' local comms
    ctx_dst = allocate_context()   # dst ranks' local comms
    ctx_fwd = allocate_context()   # src -> dst traffic
    ctx_bwd = allocate_context()   # dst -> src traffic
    src_ranks = tuple(range(src_job.n))
    dst_ranks = tuple(range(dst_job.n))
    src_inters = [
        Intercommunicator(Communicator(src_job, ctx_src, r, src_ranks),
                          ctx_bwd, ctx_fwd, dst_job, dst_ranks)
        for r in range(src_job.n)]
    dst_inters = [
        Intercommunicator(Communicator(dst_job, ctx_dst, r, dst_ranks),
                          ctx_fwd, ctx_bwd, src_job, src_ranks)
        for r in range(dst_job.n)]
    return src_inters, dst_inters
