"""Per-rank mailboxes with MPI-style (context, source, tag) matching.

Each rank of each job owns one :class:`Mailbox`.  Senders append
:class:`Envelope` objects; receivers block until a matching envelope is
present.  Matching is FIFO *per (context, source, tag)* — the MPI
non-overtaking rule: two messages from the same source with matching
tags are received in send order.

Blocking receivers register what they are waiting for so the job's
watchdog can produce a rank-state dump on deadlock, and they poll an
abort flag so a detected deadlock raises instead of hanging forever.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import DeadlockError
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG


@dataclass(slots=True)
class Envelope:
    """One in-flight message."""

    context: int
    source: int
    tag: int
    payload: Any
    nbytes: int
    seq: int = 0


class AbortFlag:
    """Shared job-wide abort signal set by the deadlock watchdog."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = ""
        self.blocked_dump: dict[int, str] = {}

    def set(self, reason: str, blocked: dict[int, str]) -> None:
        self.reason = reason
        self.blocked_dump = blocked
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


class Mailbox:
    """Thread-safe message store for one rank."""

    #: Seconds between abort-flag polls while blocked.
    POLL_INTERVAL = 0.05

    def __init__(self, rank: int, abort: AbortFlag,
                 progress: Optional[Callable[[], None]] = None,
                 block_state: Optional[Callable[[int, str | None], None]] = None):
        self.rank = rank
        self._abort = abort
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: list[Envelope] = []
        self._seq = 0
        # progress(): bump the job's global progress counter (watchdog input)
        self._progress = progress or (lambda: None)
        # block_state(rank, desc | None): record/clear what this rank waits on
        self._block_state = block_state or (lambda rank, desc: None)

    # -- sending ----------------------------------------------------------

    def deliver(self, env: Envelope) -> None:
        """Called from the *sender's* thread: enqueue and wake receivers."""
        with self._cond:
            self._seq += 1
            env.seq = self._seq
            self._messages.append(env)
            self._progress()
            self._cond.notify_all()

    # -- receiving --------------------------------------------------------

    def _find(self, context: int, source: int, tag: int) -> Optional[int]:
        for i, env in enumerate(self._messages):
            if env.context != context:
                continue
            if source != ANY_SOURCE and env.source != source:
                continue
            if tag != ANY_TAG and env.tag != tag:
                continue
            return i
        return None

    def wait_match(self, context: int, source: int, tag: int,
                   *, timeout: float | None = None) -> Envelope:
        """Block until a matching envelope arrives, then remove and return it.

        Raises :class:`DeadlockError` if the job's watchdog aborts, or
        :class:`TimeoutError` if an explicit ``timeout`` expires first.
        """
        desc = (f"recv(context={context}, "
                f"source={'ANY' if source == ANY_SOURCE else source}, "
                f"tag={'ANY' if tag == ANY_TAG else tag})")
        deadline = None if timeout is None else (
            threading.TIMEOUT_MAX if timeout <= 0 else timeout)
        waited = 0.0
        self._block_state(self.rank, desc)
        try:
            with self._cond:
                while True:
                    idx = self._find(context, source, tag)
                    if idx is not None:
                        env = self._messages.pop(idx)
                        self._progress()
                        return env
                    if self._abort.is_set():
                        raise DeadlockError(
                            f"rank {self.rank} aborted while blocked in {desc}: "
                            f"{self._abort.reason}",
                            blocked=self._abort.blocked_dump,
                        )
                    if deadline is not None and waited >= deadline:
                        raise TimeoutError(
                            f"rank {self.rank}: no match for {desc} "
                            f"after {waited:.2f}s")
                    self._cond.wait(self.POLL_INTERVAL)
                    waited += self.POLL_INTERVAL
        finally:
            self._block_state(self.rank, None)

    def probe(self, context: int, source: int, tag: int) -> Optional[Envelope]:
        """Non-destructive match test (MPI_Iprobe analogue)."""
        with self._lock:
            idx = self._find(context, source, tag)
            return self._messages[idx] if idx is not None else None

    def pending_count(self) -> int:
        with self._lock:
            return len(self._messages)
