"""Per-rank mailboxes with MPI-style (context, source, tag) matching.

Each rank of each job owns one :class:`Mailbox`.  Senders append
:class:`Envelope` objects; receivers block until a matching envelope is
present.  Matching is FIFO *per (context, source, tag)* — the MPI
non-overtaking rule: two messages from the same source with matching
tags are received in send order.

Blocking receivers register what they are waiting for so the job's
watchdog can produce a rank-state dump on deadlock.  Abort is fully
event-driven: :meth:`AbortFlag.set` notifies every subscribed mailbox
condition, so a blocked receive raises immediately instead of noticing
the flag on the next poll tick (there is no poll tick any more).

Two zero-copy transport hooks live here:

* Envelopes may carry a ``release`` callback — the loan-return hook of
  runtime-owned (pooled) buffers, fired once the transport is done with
  the buffer.
* :meth:`Mailbox.prepost` arms a **preposted receive**
  (``MPI_Recv_init`` / rendezvous-RDMA analogue): the receiver
  registers a destination *sink* before the message exists, and a
  matching send writes its bytes straight through the sink — in the
  sender's thread, with no staging buffer and no queue traversal on
  receipt.  Borrowed (lent-view) payloads hit their fast path here:
  the view is consumed synchronously inside ``deliver``, so no alias to
  the sender's storage ever survives, and when no slot is armed the
  view degrades to a snapshot — value semantics either way.

FIFO safety: ``prepost`` first drains the oldest matching *queued*
envelope, and ``deliver`` only completes a slot when no queued envelope
matches it, so a preposted receive can never overtake an earlier send.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import DeadlockError
from repro.simmpi import payload
from repro.simmpi import sanitize as _san
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.util.counters import TRANSPORT_STATS


@dataclass(slots=True)
class Envelope:
    """One in-flight message."""

    context: int
    source: int
    tag: int
    payload: Any
    nbytes: int
    seq: int = 0
    #: Loan-return callback for runtime-owned buffers (pooled pack
    #: buffers): invoked exactly once when the transport has consumed
    #: the payload without handing the buffer itself to the receiver.
    release: Optional[Callable[[], None]] = None
    #: Sender's vector clock under ``REPRO_TSAN=1`` (the mailbox
    #: handoff happens-before edge); ``None`` — and never touched —
    #: when the sanitizer is off.
    clock: Optional[dict] = None


class AbortFlag:
    """Shared job-wide abort signal set by the deadlock watchdog.

    Mailboxes subscribe their condition variables; :meth:`set` notifies
    all of them so blocked receivers wake and raise immediately.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._waiters: list[threading.Condition] = []
        self.reason: str = ""
        self.blocked_dump: dict[int, str] = {}

    def subscribe(self, cond: threading.Condition) -> None:
        """Register a condition to be notified when the flag is set."""
        with self._lock:
            self._waiters.append(cond)

    def set(self, reason: str, blocked: dict[int, str]) -> None:
        with self._lock:
            # First cause wins: a rank that crashes *because* the abort
            # already fired (e.g. re-raising DeadlockError out of a
            # blocked recv) must not clobber the watchdog's blocked-rank
            # dump with its secondary report.
            if not self._event.is_set():
                self.reason = reason
                self.blocked_dump = blocked
                self._event.set()
            waiters = list(self._waiters)
        for cond in waiters:
            with cond:
                cond.notify_all()

    def is_set(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float) -> bool:
        """Sleep up to ``timeout`` seconds, waking early on abort.

        The backoff primitive for cross-process RMA epoch waits
        (:mod:`repro.simmpi.rma`): there is no condition variable
        spanning the window's processes, so waiters poll the shared
        counter — but they sleep on the abort event, keeping the wait
        abort-responsive without a bare ``time.sleep`` loop."""
        return self._event.wait(timeout)


class PrepostSlot:
    """One armed preposted receive (recv-into-destination).

    ``sink(values)`` consumes the matching payload — typically a
    compiled pair plan's scatter writing straight into the destination
    array's consolidated ``flat_local()`` base — and returns the element
    count.  It runs in whichever thread completes the slot (the sender's
    on direct delivery), under the mailbox lock.
    """

    __slots__ = ("context", "source", "tag", "sink", "done", "result",
                 "clock", "_mailbox")

    def __init__(self, mailbox: "Mailbox", context: int, source: int,
                 tag: int, sink: Callable[[Any], int]):
        self.context = context
        self.source = source
        self.tag = tag
        self.sink = sink
        self.done = False
        self.result: int = 0
        self.clock: Optional[dict] = None   # sender clock (REPRO_TSAN)
        self._mailbox = mailbox

    def matches(self, env: Envelope) -> bool:
        if env.context != self.context:
            return False
        if self.source != ANY_SOURCE and env.source != self.source:
            return False
        return self.tag == ANY_TAG or env.tag == self.tag

    def _complete(self, values: Any) -> None:
        # caller holds the mailbox lock
        self.result = int(self.sink(values))
        self.done = True

    def wait(self, timeout: float | None = None) -> int:
        """Block until the slot's message has been consumed; returns the
        sink's element count."""
        return self._mailbox._wait_slot(self, timeout)


class Mailbox:
    """Thread-safe message store for one rank."""

    def __init__(self, rank: int, abort: AbortFlag,
                 progress: Optional[Callable[[], None]] = None,
                 block_state: Optional[Callable[[int, str | None], None]] = None):
        self.rank = rank
        self._abort = abort
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: list[Envelope] = []
        self._slots: list[PrepostSlot] = []
        self._seq = 0
        # progress(): bump the job's global progress counter (watchdog input)
        self._progress = progress or (lambda: None)
        # block_state(rank, desc | None): record/clear what this rank waits on
        self._block_state = block_state or (lambda rank, desc: None)
        abort.subscribe(self._cond)

    # -- watchdog plumbing for non-mailbox waits (RMA epoch spins) ---------

    @property
    def abort(self) -> AbortFlag:
        """The job-wide abort flag this mailbox subscribes to."""
        return self._abort

    def set_block_desc(self, desc: str | None) -> None:
        """Record (or clear, with ``None``) what this rank is blocked on
        — the same watchdog channel mailbox waits use, exposed so
        one-sided epoch waits (:mod:`repro.simmpi.rma`) are visible in
        deadlock dumps too."""
        self._block_state(self.rank, desc)

    def note_progress(self) -> None:
        """Bump the job's progress counter for work done outside the
        mailbox (a completed RMA fence or epoch wait)."""
        self._progress()

    # -- sending ----------------------------------------------------------

    def deliver(self, env: Envelope, live=None) -> None:
        """Called from the *sender's* thread: complete a preposted slot
        directly, else enqueue, and wake receivers.

        ``live`` is a lent (borrowed) view consumed synchronously: it is
        written through an armed slot's sink right here, or snapshotted
        into ``env.payload`` before enqueueing — no alias to the
        sender's storage survives this call either way.
        """
        san = _san.ACTIVE
        if san is not None:
            san.env_stamp(env)
        with self._cond:
            slot = self._match_slot(env)
            if slot is not None:
                self._slots.remove(slot)
                slot.clock = env.clock
                slot._complete(live if live is not None else env.payload)
                if env.release is not None:
                    env.release()
                TRANSPORT_STATS.add("direct_deliveries")
                TRANSPORT_STATS.add("direct_bytes", env.nbytes)
                TRANSPORT_STATS.add("messages_matched")
                self._progress()
                self._cond.notify_all()
                return
            if live is not None:
                env.payload = payload.snapshot(live)
            self._seq += 1
            env.seq = self._seq
            self._messages.append(env)
            # queued (unconsumed) bytes are resident transfer memory —
            # the O(pairs) term the collective planner exists to bound.
            TRANSPORT_STATS.gauge_add("resident_bytes", env.nbytes)
            self._progress()
            self._cond.notify_all()

    def _match_slot(self, env: Envelope) -> Optional[PrepostSlot]:
        """Oldest armed slot matching ``env`` — but only if no *queued*
        envelope also matches that slot (FIFO: queued messages from the
        same (context, source, tag) stream must complete it first).
        Slot arming drains the queue (see :meth:`prepost`), so in
        practice a matching queued envelope cannot exist; the check
        keeps the invariant local and obvious."""
        for slot in self._slots:
            if slot.matches(env):
                if any(slot.matches(m) for m in self._messages):
                    return None
                return slot
        return None

    # -- receiving --------------------------------------------------------

    def _find(self, context: int, source: int, tag: int) -> Optional[int]:
        for i, env in enumerate(self._messages):
            if env.context != context:
                continue
            if source != ANY_SOURCE and env.source != source:
                continue
            if tag != ANY_TAG and env.tag != tag:
                continue
            return i
        return None

    def prepost(self, context: int, source: int, tag: int,
                sink: Callable[[Any], int]) -> PrepostSlot:
        """Arm a preposted receive: subsequent matching sends write
        straight through ``sink`` with no staging buffer.

        A message that was already queued when the slot is armed is
        consumed immediately (preserving per-stream FIFO order); the
        returned slot may then already be ``done``.  Complete the slot
        with :meth:`PrepostSlot.wait`.
        """
        slot = PrepostSlot(self, context, source, tag, sink)
        with self._cond:
            idx = self._find(context, source, tag)
            if idx is not None:
                env = self._messages.pop(idx)
                TRANSPORT_STATS.gauge_add("resident_bytes", -env.nbytes)
                san = _san.ACTIVE
                if san is not None:
                    san.env_join(env.clock)
                slot._complete(env.payload)
                if env.release is not None:
                    env.release()
                TRANSPORT_STATS.add("messages_matched")
                self._progress()
            else:
                self._slots.append(slot)
        return slot

    def _wait_slot(self, slot: PrepostSlot, timeout: float | None) -> int:
        desc = (f"prepost_recv(context={slot.context}, "
                f"source={'ANY' if slot.source == ANY_SOURCE else slot.source}, "
                f"tag={'ANY' if slot.tag == ANY_TAG else slot.tag})")
        limit = None if timeout is None else (
            threading.TIMEOUT_MAX if timeout <= 0 else timeout)
        start = time.monotonic()
        self._block_state(self.rank, desc)
        blocked = False
        try:
            with self._cond:
                while True:
                    if slot.done:
                        san = _san.ACTIVE
                        if san is not None:
                            san.env_join(slot.clock)
                        self._progress()
                        return slot.result
                    if not blocked:
                        # the message is not here yet: this receive pays
                        # a real rendezvous wait (two-sided overhead the
                        # one-sided tier is designed to remove)
                        TRANSPORT_STATS.add("rendezvous_waits")
                        blocked = True
                    if self._abort.is_set():
                        raise DeadlockError(
                            f"rank {self.rank} aborted while blocked in {desc}: "
                            f"{self._abort.reason}",
                            blocked=self._abort.blocked_dump,
                        )
                    if limit is None:
                        self._cond.wait()
                    else:
                        waited = time.monotonic() - start
                        if waited >= limit:
                            raise TimeoutError(
                                f"rank {self.rank}: no match for {desc} "
                                f"after {waited:.2f}s")
                        self._cond.wait(limit - waited)
        finally:
            self._block_state(self.rank, None)

    def wait_match(self, context: int, source: int, tag: int,
                   *, timeout: float | None = None) -> Envelope:
        """Block until a matching envelope arrives, then remove and return it.

        Raises :class:`DeadlockError` if the job's watchdog aborts, or
        :class:`TimeoutError` if an explicit ``timeout`` expires first.
        Wakeups are purely event-driven (delivery or abort notification).
        """
        desc = (f"recv(context={context}, "
                f"source={'ANY' if source == ANY_SOURCE else source}, "
                f"tag={'ANY' if tag == ANY_TAG else tag})")
        limit = None if timeout is None else (
            threading.TIMEOUT_MAX if timeout <= 0 else timeout)
        start = time.monotonic()
        self._block_state(self.rank, desc)
        blocked = False
        try:
            with self._cond:
                while True:
                    idx = self._find(context, source, tag)
                    if idx is not None:
                        env = self._messages.pop(idx)
                        TRANSPORT_STATS.gauge_add("resident_bytes",
                                                  -env.nbytes)
                        TRANSPORT_STATS.add("messages_matched")
                        san = _san.ACTIVE
                        if san is not None:
                            san.env_join(env.clock)
                        self._progress()
                        return env
                    if not blocked:
                        TRANSPORT_STATS.add("rendezvous_waits")
                        blocked = True
                    if self._abort.is_set():
                        raise DeadlockError(
                            f"rank {self.rank} aborted while blocked in {desc}: "
                            f"{self._abort.reason}",
                            blocked=self._abort.blocked_dump,
                        )
                    if limit is None:
                        self._cond.wait()
                    else:
                        waited = time.monotonic() - start
                        if waited >= limit:
                            raise TimeoutError(
                                f"rank {self.rank}: no match for {desc} "
                                f"after {waited:.2f}s")
                        self._cond.wait(limit - waited)
        finally:
            self._block_state(self.rank, None)

    def wait_match_any(self, specs: "list[tuple[int, int, int]]",
                       *, timeout: float | None = None) -> Envelope:
        """Block until an envelope matches *any* ``(context, source,
        tag)`` spec, then remove and return it (earliest spec wins when
        several match, FIFO within a spec).

        The event-driven serve-loop primitive: one blocked wait covers
        every ingress stream a server drains (collective invocations
        from its expected callers, batch frames from any source, control
        traffic), instead of one lockstep ``recv`` per stream.  Raises
        :class:`DeadlockError` on watchdog abort exactly like
        :meth:`wait_match`.
        """
        specs = list(specs)
        if not specs:
            raise ValueError("wait_match_any needs at least one spec")
        desc = "recv_any(" + ", ".join(
            f"(context={c}, "
            f"source={'ANY' if s == ANY_SOURCE else s}, "
            f"tag={'ANY' if t == ANY_TAG else t})"
            for c, s, t in specs) + ")"
        limit = None if timeout is None else (
            threading.TIMEOUT_MAX if timeout <= 0 else timeout)
        start = time.monotonic()
        self._block_state(self.rank, desc)
        blocked = False
        try:
            with self._cond:
                while True:
                    for context, source, tag in specs:
                        idx = self._find(context, source, tag)
                        if idx is not None:
                            env = self._messages.pop(idx)
                            TRANSPORT_STATS.gauge_add("resident_bytes",
                                                      -env.nbytes)
                            TRANSPORT_STATS.add("messages_matched")
                            san = _san.ACTIVE
                            if san is not None:
                                san.env_join(env.clock)
                            self._progress()
                            return env
                    if not blocked:
                        TRANSPORT_STATS.add("rendezvous_waits")
                        blocked = True
                    if self._abort.is_set():
                        raise DeadlockError(
                            f"rank {self.rank} aborted while blocked in "
                            f"{desc}: {self._abort.reason}",
                            blocked=self._abort.blocked_dump,
                        )
                    if limit is None:
                        self._cond.wait()
                    else:
                        waited = time.monotonic() - start
                        if waited >= limit:
                            raise TimeoutError(
                                f"rank {self.rank}: no match for {desc} "
                                f"after {waited:.2f}s")
                        self._cond.wait(limit - waited)
        finally:
            self._block_state(self.rank, None)

    def probe(self, context: int, source: int, tag: int) -> Optional[Envelope]:
        """Non-destructive match test (MPI_Iprobe analogue)."""
        with self._lock:
            idx = self._find(context, source, tag)
            return self._messages[idx] if idx is not None else None

    def pending_count(self) -> int:
        with self._lock:
            return len(self._messages)
