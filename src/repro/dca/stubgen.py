"""DCA stub generation.

"The stub generator that parses the SIDL source files automatically adds
an extra argument to all port methods, of type MPI_Comm, that is used to
communicate to the framework which processes participate in the parallel
remote method invocation."

:func:`generate_stubs` turns a :class:`~repro.cca.sidl.PortType` into a
stub object whose methods mirror the port's methods with that extra
``pcomm`` parameter prepended — calling a stub method performs the full
DCA invocation.
"""

from __future__ import annotations

from typing import Any

from repro.cca.sidl import PortType
from repro.dca.engine import DCACallerPort
from repro.simmpi.communicator import Communicator


class _Stub:
    """Dynamically populated namespace of generated port methods."""

    def __init__(self, port_name: str):
        self._port_name = port_name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        methods = [k for k in vars(self) if not k.startswith("_")]
        return f"<DCA stub for {self._port_name}: {sorted(methods)}>"


def generate_stubs(caller: DCACallerPort) -> _Stub:
    """Generate caller-side stub functions for every port method.

    Each generated method has the signature
    ``stub.method(pcomm, **kwargs)`` — the participation communicator is
    the auto-added first argument; pass ``None`` for full participation.
    """
    stub = _Stub(caller.port_type.name)
    for spec in caller.port_type.methods:
        def make(method_name: str):
            def call(pcomm: Communicator | None = None, **kwargs: Any) -> Any:
                return caller.invoke(method_name, pcomm=pcomm, **kwargs)
            call.__name__ = method_name
            call.__doc__ = (
                f"Generated DCA stub for {caller.port_type.name}."
                f"{method_name}; first argument is the participation "
                f"communicator (None = whole cohort).")
            return call
        setattr(stub, spec.name, make(spec.name))
    return stub
