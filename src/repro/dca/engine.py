"""The DCA invocation engine: headers, bodies, and delivery policies.

Wire protocol per collective call:

1. (BARRIER policy only) the participants synchronize on their
   participation communicator — the paper's fix for Fig. 5;
2. the lowest participant sends a *header* (method, participant ranks,
   simple args) to callee rank 0;
3. **every** participant sends one *body* message to **every** callee
   rank, tagged with a method-derived key and carrying that callee's
   chunks of the parallel arguments (MPI alltoallv shape);
4. callee rank 0 broadcasts the header over the callee cohort; every
   callee rank receives the participants' bodies in header order and
   assembles per-parameter :class:`DCABuffer` values;
5. unless the method is one-way, callee rank 0 returns the result to
   every participant.

The method-derived body tag is what makes the EAGER policy faithful to
Fig. 5: a server committed to call 1 posts receives that can never match
call 2's queued bodies, so intersecting participant sets deadlock —
detected by the runtime watchdog instead of hanging.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import ParticipationError, PRMIError
from repro.cca.sidl import MethodSpec, PortType
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator

HDR_TAG = 120
BODY_TAG_BASE = 2000
RET_TAG_BASE = 4000
_KEY_SPACE = 1024


class DeliveryPolicy(enum.Enum):
    """When a collective invocation is delivered to the provider."""

    #: Deliver as soon as the first participant reaches the call point —
    #: the broken semantics of Fig. 5.
    EAGER = "eager"
    #: Delay delivery "until all participating processes have reached
    #: the calling point by inserting a barrier before the delivery".
    BARRIER = "barrier"


def _method_key(method: str) -> int:
    return zlib.crc32(method.encode()) % _KEY_SPACE


class DCAParallelArg:
    """Caller-side parallel data in DCA's alltoallv idiom.

    ``sendbuf[displs[j] : displs[j] + counts[j]]`` is the chunk destined
    for callee rank ``j``.
    """

    def __init__(self, sendbuf: np.ndarray, counts: Sequence[int],
                 displs: Sequence[int] | None = None):
        self.sendbuf = np.asarray(sendbuf)
        if self.sendbuf.ndim != 1:
            raise PRMIError("DCAParallelArg sendbuf must be 1-D")
        self.counts = [int(c) for c in counts]
        if displs is None:
            displs = np.concatenate(([0], np.cumsum(self.counts)[:-1]))
        self.displs = [int(d) for d in displs]
        if len(self.counts) != len(self.displs):
            raise PRMIError("counts and displs must have equal length")
        for c, d in zip(self.counts, self.displs):
            if d + c > self.sendbuf.shape[0]:
                raise PRMIError(
                    f"chunk [{d}, {d + c}) exceeds sendbuf length "
                    f"{self.sendbuf.shape[0]}")

    def chunk_for(self, callee: int) -> np.ndarray:
        d, c = self.displs[callee], self.counts[callee]
        return self.sendbuf[d:d + c]


@dataclass
class DCABuffer:
    """Callee-side view of one parallel parameter: the concatenation of
    every participant's chunk, alltoallv-style."""

    data: np.ndarray
    counts: list[int]          #: chunk length per participant
    sources: list[int]         #: participant caller ranks, header order

    def chunk_from(self, participant_index: int) -> np.ndarray:
        lo = sum(self.counts[:participant_index])
        return self.data[lo:lo + self.counts[participant_index]]


class DCACallerPort:
    """Uses side of a DCA remote port."""

    def __init__(self, local_comm: Communicator, inter: Intercommunicator,
                 port_type: PortType,
                 policy: DeliveryPolicy = DeliveryPolicy.BARRIER):
        self.local_comm = local_comm
        self.inter = inter
        self.port_type = port_type
        self.policy = policy
        self.barriers_inserted = 0

    def invoke(self, method: str, pcomm: Communicator | None = None,
               **kwargs: Any) -> Any:
        """Collective over the participants.

        ``pcomm`` is the participation communicator (the extra argument
        DCA's stub generator appends); ``None`` means all local ranks
        participate.
        """
        spec = self.port_type.method(method)
        pcomm = pcomm if pcomm is not None else self.local_comm
        simple, parallel = self._split_args(spec, kwargs)

        # Participant local ranks come from the communicator's membership
        # metadata, NOT from a collective — an allgather here would act
        # as a hidden barrier and mask the Fig. 5 failure mode that the
        # EAGER policy exists to demonstrate.
        try:
            participants = [self.local_comm.job_ranks.index(jr)
                            for jr in pcomm.job_ranks]
        except ValueError:
            raise ParticipationError(
                "participation communicator is not a subset of the "
                "component's cohort communicator") from None
        if self.policy is DeliveryPolicy.BARRIER:
            pcomm.barrier()
            self.barriers_inserted += 1

        key = _method_key(method)
        if pcomm.rank == 0:
            self.inter.send((method, participants, simple),
                            dest=0, tag=HDR_TAG)
        n = self.inter.remote_size
        for callee in range(n):
            body = {name: arg.chunk_for(callee)
                    for name, arg in parallel.items()}
            self.inter.send(body, dest=callee, tag=BODY_TAG_BASE + key)

        if spec.oneway:
            return None
        return self.inter.recv(source=0, tag=RET_TAG_BASE + key)

    def _split_args(self, spec: MethodSpec,
                    kwargs: dict) -> tuple[dict, dict]:
        declared = {p.name for p in spec.in_params}
        if set(kwargs) != declared:
            raise PRMIError(
                f"method {spec.name!r} expects arguments {sorted(declared)}, "
                f"got {sorted(kwargs)}")
        simple, parallel = {}, {}
        for p in spec.in_params:
            value = kwargs[p.name]
            if p.kind == "parallel":
                if not isinstance(value, DCAParallelArg):
                    raise PRMIError(
                        f"argument {p.name!r} is declared parallel; wrap it "
                        f"in DCAParallelArg")
                if len(value.counts) != self.inter.remote_size:
                    raise PRMIError(
                        f"argument {p.name!r}: counts target "
                        f"{len(value.counts)} callees, remote size is "
                        f"{self.inter.remote_size}")
                parallel[p.name] = value
            else:
                simple[p.name] = value
        return simple, parallel


class DCAServerPort:
    """Provides side of a DCA remote port."""

    def __init__(self, local_comm: Communicator, inter: Intercommunicator,
                 port_type: PortType, impl: Any):
        self.local_comm = local_comm
        self.inter = inter
        self.port_type = port_type
        self.impl = impl
        self.serviced: list[str] = []

    def serve_one(self) -> str:
        """Service one collective invocation; collective over the callee
        cohort.  Returns the method name serviced."""
        if self.local_comm.rank == 0:
            header = self.inter.recv(tag=HDR_TAG)
        else:
            header = None
        method, participants, simple = self.local_comm.bcast(header, root=0)
        spec = self.port_type.method(method)
        key = _method_key(method)

        # Commitment point: from here the server only accepts bodies of
        # THIS call.  Under EAGER delivery with intersecting participant
        # sets this is where Fig. 5's deadlock forms.
        chunks_per_param: dict[str, list[np.ndarray]] = {
            p.name: [] for p in spec.parallel_params}
        for p_rank in participants:
            body = self.inter.recv(source=p_rank, tag=BODY_TAG_BASE + key)
            got = set(body)
            expect = set(chunks_per_param)
            if got != expect:
                raise ParticipationError(
                    f"body from caller {p_rank} carries params {sorted(got)},"
                    f" expected {sorted(expect)}")
            for name, chunk in body.items():
                chunks_per_param[name].append(np.asarray(chunk))

        call_kwargs: dict[str, Any] = dict(simple)
        for name, chunks in chunks_per_param.items():
            counts = [c.shape[0] for c in chunks]
            data = (np.concatenate(chunks) if chunks
                    else np.empty(0))
            call_kwargs[name] = DCABuffer(data, counts, list(participants))

        result = getattr(self.impl, method)(**call_kwargs)
        self.serviced.append(method)

        if not spec.oneway and self.local_comm.rank == 0:
            for p_rank in participants:
                self.inter.send(result, dest=p_rank, tag=RET_TAG_BASE + key)
        return method

    def serve(self, count: int) -> list[str]:
        """Service ``count`` invocations in arrival order."""
        return [self.serve_one() for _ in range(count)]
