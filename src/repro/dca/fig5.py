"""The paper's Figure 5 synchronization scenario, as runnable code.

Three caller processes talk to one serial provider:

* process 0 participates only in **collective call 1** (all three),
* processes 1 and 2 first make **collective call 2** (just the two of
  them), then join call 1.

"If the PRMI call is delivered as soon as one process reaches the
calling point, the remote component will block at t1 waiting for data
from processes 2 and 3, and will not accept the second collective call
... The remote component will be blocked indefinitely ... The solution
is to delay PRMI delivery until all processes are ready."

:func:`run_fig5` executes the scenario under a chosen delivery policy.
Under ``BARRIER`` it completes and returns the serviced-call timeline;
under ``EAGER`` (with the stagger that makes the race deterministic) the
deadlock forms and the runtime watchdog raises
:class:`~repro.errors.SpmdError` wrapping per-rank
:class:`~repro.errors.DeadlockError`\\ s.
"""

from __future__ import annotations

import time
from typing import Any

from repro.cca.sidl import arg, method, port
from repro.dca.engine import DCACallerPort, DCAServerPort, DeliveryPolicy
from repro.simmpi import NameService, run_coupled

FIG5_PORT = port(
    "Fig5Port",
    method("collective_call_1", arg("x")),
    method("collective_call_2", arg("x")),
)


class _Fig5Impl:
    """Serial provider: records the order calls are serviced in."""

    def __init__(self):
        self.timeline: list[str] = []

    def collective_call_1(self, x):
        self.timeline.append("call1")
        return f"r1:{x}"

    def collective_call_2(self, x):
        self.timeline.append("call2")
        return f"r2:{x}"


def run_fig5(policy: DeliveryPolicy, *, stagger: float = 0.15,
             deadlock_timeout: float = 1.5) -> dict[str, Any]:
    """Run the Fig. 5 scenario under ``policy``.

    ``stagger`` delays processes 1 and 2 so that under EAGER delivery
    the provider deterministically commits to call 1 first (the paper's
    t1).  Returns ``{"timeline": [...], "callers": [...]}`` on success;
    raises :class:`~repro.errors.SpmdError` on deadlock.
    """
    ns = NameService()

    def provider(comm):
        inter = ns.accept("fig5", comm)
        impl = _Fig5Impl()
        server = DCAServerPort(comm, inter, FIG5_PORT, impl)
        server.serve_one()
        server.serve_one()
        return impl.timeline

    def callers(comm):
        inter = ns.connect("fig5", comm)
        caller = DCACallerPort(comm, inter, FIG5_PORT, policy=policy)
        all_three = comm  # participation: everyone
        just_two = comm.create_subcomm([1, 2])
        results = []
        if comm.rank == 0:
            # t1: process 1 (paper numbering) reaches call 1 immediately.
            results.append(caller.invoke("collective_call_1",
                                         pcomm=all_three, x="a"))
        else:
            # Processes 2 and 3 reach call 2 first (t2, t3)...
            time.sleep(stagger)
            results.append(caller.invoke("collective_call_2",
                                         pcomm=just_two, x="b"))
            # ...and only then call 1 (t4, t5).
            results.append(caller.invoke("collective_call_1",
                                         pcomm=all_three, x="a"))
        return results

    out = run_coupled(
        [("provider", 1, provider, ()), ("callers", 3, callers, ())],
        deadlock_timeout=deadlock_timeout)
    return {"timeline": out["provider"][0], "callers": out["callers"]}
