"""DCA — the Distributed CCA Architecture framework model (paper §4.3).

DCA solves the PRMI problems with MPI constructions:

* **process participation** is decided per call by passing a
  communicator — "the stub generator ... automatically adds an extra
  argument to all port methods, of type MPI_Comm";
* **invocation order** across intersecting participant sets is preserved
  by "inserting a barrier before the delivery" (Fig. 5) — exposed here
  as the EAGER/BARRIER :class:`DeliveryPolicy` so the paper's deadlock
  scenario can be reproduced and prevented;
* **parallel data** is described alltoall-style — "the user define[s]
  the data distribution layout using MPI data types, displacement and
  count arrays" — via :class:`DCAParallelArg`.
"""

from repro.dca.engine import (
    DCABuffer,
    DCACallerPort,
    DCAParallelArg,
    DCAServerPort,
    DeliveryPolicy,
)
from repro.dca.stubgen import generate_stubs
from repro.dca.framework import DCAApplication

__all__ = [
    "DeliveryPolicy",
    "DCACallerPort",
    "DCAServerPort",
    "DCAParallelArg",
    "DCABuffer",
    "generate_stubs",
    "DCAApplication",
]
