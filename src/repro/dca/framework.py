"""DCA application orchestration: components as coupled SPMD jobs.

A :class:`DCAApplication` declares parallel components (each its own
job), their port connections, and runs everything concurrently — Go
ports "are called at startup time, so all components that provide a Go
port will be started concurrently" (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PortError
from repro.cca.sidl import PortType
from repro.dca.engine import (
    DCACallerPort,
    DCAServerPort,
    DeliveryPolicy,
)
from repro.simmpi import NameService, run_coupled
from repro.simmpi.communicator import Communicator


@dataclass
class _ComponentDef:
    name: str
    nranks: int
    main: Callable[..., Any]
    uses: dict[str, PortType] = field(default_factory=dict)
    provides: dict[str, tuple[PortType, Callable[[Communicator], Any]]] = \
        field(default_factory=dict)


@dataclass(frozen=True)
class _Connection:
    user: str
    uses_port: str
    provider: str
    provides_port: str

    @property
    def service_name(self) -> str:
        return f"{self.user}.{self.uses_port}->{self.provider}.{self.provides_port}"


class DCAApplication:
    """Declarative multi-component DCA application."""

    def __init__(self, *, policy: DeliveryPolicy = DeliveryPolicy.BARRIER,
                 deadlock_timeout: float = 10.0):
        self.policy = policy
        self.deadlock_timeout = deadlock_timeout
        self._components: dict[str, _ComponentDef] = {}
        self._connections: list[_Connection] = []

    def add_component(self, name: str, nranks: int,
                      main: Callable[..., Any], *,
                      uses: dict[str, PortType] | None = None,
                      provides: dict[str, tuple[PortType, Callable]] | None = None) -> None:
        """Declare a parallel component.

        ``main(comm, ports)`` is the component's Go body; ``ports`` maps
        each declared port name to its :class:`DCACallerPort` (uses) or
        :class:`DCAServerPort` (provides).
        ``provides[name] = (port_type, impl_factory)`` where
        ``impl_factory(comm)`` builds the rank-local implementation.
        """
        if name in self._components:
            raise PortError(f"component {name!r} already declared")
        self._components[name] = _ComponentDef(
            name, nranks, main, dict(uses or {}), dict(provides or {}))

    def connect(self, user: str, uses_port: str,
                provider: str, provides_port: str) -> None:
        for comp, port_name, side in ((user, uses_port, "uses"),
                                      (provider, provides_port, "provides")):
            if comp not in self._components:
                raise PortError(f"unknown component {comp!r}")
            ports = getattr(self._components[comp], side)
            if port_name not in ports:
                raise PortError(
                    f"component {comp!r} declares no {side} port "
                    f"{port_name!r}")
        u_type = self._components[user].uses[uses_port]
        p_type = self._components[provider].provides[provides_port][0]
        if u_type.name != p_type.name:
            raise PortError(
                f"port type mismatch: {u_type.name!r} vs {p_type.name!r}")
        self._connections.append(
            _Connection(user, uses_port, provider, provides_port))

    def run(self) -> dict[str, list[Any]]:
        """Launch every component concurrently and return per-component,
        per-rank results of their ``main`` functions."""
        ns = NameService()
        # A consistent global connection order makes the pairwise
        # accept/connect rendezvous deadlock-free.
        ordered = sorted(self._connections, key=lambda c: c.service_name)

        def component_body(comm: Communicator, cdef: _ComponentDef):
            ports: dict[str, Any] = {}
            for conn in ordered:
                if conn.provider == cdef.name:
                    inter = ns.accept(conn.service_name, comm)
                    port_type, factory = cdef.provides[conn.provides_port]
                    impl = factory(comm)
                    ports[conn.provides_port] = DCAServerPort(
                        comm, inter, port_type, impl)
                elif conn.user == cdef.name:
                    inter = ns.connect(conn.service_name, comm)
                    ports[conn.uses_port] = DCACallerPort(
                        comm, inter, cdef.uses[conn.uses_port],
                        policy=self.policy)
            return cdef.main(comm, ports)

        jobs = [(cdef.name, cdef.nranks, component_body, (cdef,))
                for cdef in self._components.values()]
        return run_coupled(jobs, deadlock_timeout=self.deadlock_timeout)
