"""Spatial decompositions: continuous domains over DAD cell templates.

The domain box is divided into a regular cell grid; cells are assigned
to ranks by an ordinary DAD :class:`~repro.dad.template.Template`, so
the full menu of distribution types (block, block-cyclic, generalized
block, explicit patches, ...) applies to particle ownership too —
reusing the descriptor machinery exactly as the paper's DAD-centric
design intends.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DistributionError
from repro.dad.template import Template, block_template


class SpatialDecomposition:
    """Maps continuous positions to owning ranks via a cell template."""

    def __init__(self, lo: Sequence[float], hi: Sequence[float],
                 template: Template):
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise DistributionError("domain lo/hi must be 1-D, same length")
        if np.any(self.hi <= self.lo):
            raise DistributionError(
                f"empty domain: lo={self.lo} hi={self.hi}")
        if len(template.shape) != self.lo.shape[0]:
            raise DistributionError(
                f"template rank {len(template.shape)} != domain rank "
                f"{self.lo.shape[0]}")
        self.template = template
        self.cells = np.asarray(template.shape, dtype=np.int64)
        self.cell_size = (self.hi - self.lo) / self.cells

    @classmethod
    def block(cls, lo: Sequence[float], hi: Sequence[float],
              cells: Sequence[int], grid: Sequence[int]
              ) -> "SpatialDecomposition":
        """Convenience: block-distributed cell grid."""
        return cls(lo, hi, block_template(cells, grid))

    @property
    def nranks(self) -> int:
        return self.template.nranks

    @property
    def ndim(self) -> int:
        return self.lo.shape[0]

    def cell_of(self, positions: np.ndarray) -> np.ndarray:
        """Cell coordinates of each position (vectorized, clamped to the
        domain so boundary particles stay owned)."""
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        if positions.shape[1] != self.ndim:
            raise DistributionError(
                f"positions have dim {positions.shape[1]}, domain has "
                f"{self.ndim}")
        rel = (positions - self.lo) / self.cell_size
        cells = np.floor(rel).astype(np.int64)
        np.clip(cells, 0, self.cells - 1, out=cells)
        return cells

    def owner_of(self, positions: np.ndarray) -> np.ndarray:
        """Owning rank of each position (vectorized)."""
        cells = self.cell_of(positions)
        return np.fromiter(
            (self.template.owner_of(tuple(c)) for c in cells),
            dtype=np.int64, count=cells.shape[0])

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask: position inside the (closed) domain box."""
        positions = np.atleast_2d(positions)
        return np.all((positions >= self.lo) & (positions <= self.hi),
                      axis=1)
