"""Particle-field containers — §4.1's in-development feature, built.

"To support more complex data structure decompositions, a
'particle-based' container solution is also under development" (§4.1);
"work on other data structures, such as sparse matrices and particle
fields is planned" (§2.2.2).  (Distributed sparse matrices live in
:mod:`repro.mct.sparsematrix`.)

A :class:`ParticleField` stores identified particles with positions and
named attributes in structure-of-arrays form.  Ownership follows a
:class:`SpatialDecomposition` — a continuous domain box divided into a
cell grid whose cells are assigned to ranks through any DAD template,
so every distribution type (block, cyclic, explicit, ...) works for
particles too.  :func:`migrate` restores the ownership invariant inside
one cohort after particles move; :func:`exchange_mxn` is the M×N
transfer for particle data between two coupled programs.
"""

from repro.particles.field import ParticleField
from repro.particles.decomposition import SpatialDecomposition
from repro.particles.migrate import exchange_mxn, migrate

__all__ = [
    "ParticleField",
    "SpatialDecomposition",
    "migrate",
    "exchange_mxn",
]
