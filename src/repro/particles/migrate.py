"""Particle migration and M×N particle exchange.

:func:`migrate` restores the ownership invariant inside one cohort
after particles move: each rank bins its particles by destination owner
and ships them point-to-point (every pair exchanges exactly one message,
possibly empty — the particle analogue of a redistribution schedule,
except the "schedule" is data-dependent and recomputed from positions).

:func:`exchange_mxn` is the coupled-programs version over an
intercommunicator: the M-side partitions its particles by the N side's
spatial decomposition and sends; every N-side rank receives one batch
from every M-side rank.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError
from repro.particles.decomposition import SpatialDecomposition
from repro.particles.field import ParticleField
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator

MIGRATE_TAG = 180
MXN_TAG = 181


def _partition(field: ParticleField, decomp: SpatialDecomposition,
               nparts: int) -> list[ParticleField]:
    """Split a field into per-owner subfields."""
    if field.count == 0:
        return [field.select(np.zeros(0, dtype=bool))
                for _ in range(nparts)]
    owners = decomp.owner_of(field.positions)
    return [field.select(owners == r) for r in range(nparts)]


def _pack(field: ParticleField) -> tuple:
    return (field.ids, field.positions,
            {k: v for k, v in field.attributes.items()})


def _unpack(blob: tuple) -> ParticleField:
    ids, positions, attrs = blob
    return ParticleField(ids, positions, attrs)


def migrate(comm: Communicator, field: ParticleField,
            decomp: SpatialDecomposition) -> ParticleField:
    """Return this rank's particles after restoring ownership.

    Collective over ``comm`` (which must match the decomposition's rank
    count).  Particles outside the domain box are clamped to boundary
    cells — nothing is lost.
    """
    if comm.size != decomp.nranks:
        raise DistributionError(
            f"communicator size {comm.size} != decomposition ranks "
            f"{decomp.nranks}")
    me = comm.rank
    parts = _partition(field, decomp, comm.size)
    for r in range(comm.size):
        if r != me:
            comm.send(_pack(parts[r]), r, MIGRATE_TAG)
    incoming = [parts[me]]
    for r in range(comm.size):
        if r != me:
            incoming.append(_unpack(comm.recv(source=r, tag=MIGRATE_TAG)))
    return ParticleField.concatenate(incoming)


def exchange_mxn(inter: Intercommunicator, side: str,
                 field: ParticleField | None = None,
                 decomp: SpatialDecomposition | None = None,
                 *, ndim: int | None = None,
                 attribute_shapes: dict | None = None
                 ) -> ParticleField | None:
    """M×N particle transfer between two coupled programs.

    Source side: pass ``field`` plus the *destination* decomposition
    (``decomp``); every source rank sends one batch to every destination
    rank.  Destination side: pass ``decomp`` (its own) and the field
    metadata (``ndim``, ``attribute_shapes``); returns the received
    particles, guaranteed locally owned.
    """
    if side == "src":
        if field is None or decomp is None:
            raise DistributionError(
                "source side needs both field and the destination "
                "decomposition")
        if decomp.nranks != inter.remote_size:
            raise DistributionError(
                f"destination decomposition has {decomp.nranks} ranks, "
                f"remote size is {inter.remote_size}")
        parts = _partition(field, decomp, inter.remote_size)
        for r, part in enumerate(parts):
            inter.send(_pack(part), dest=r, tag=MXN_TAG)
        return None
    if side == "dst":
        if decomp is None or ndim is None:
            raise DistributionError(
                "destination side needs its decomposition and ndim")
        batches = [ParticleField.empty(ndim, attribute_shapes)]
        for r in range(inter.remote_size):
            batches.append(_unpack(inter.recv(source=r, tag=MXN_TAG)))
        merged = ParticleField.concatenate(batches)
        if merged.count:
            owners = decomp.owner_of(merged.positions)
            if not np.all(owners == inter.rank):
                raise DistributionError(
                    "received particles not owned by this rank")
        return merged
    raise ValueError(f"side must be 'src' or 'dst', got {side!r}")
