"""Structure-of-arrays particle storage."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import DistributionError


class ParticleField:
    """One rank's particles: ids, positions, named attributes.

    All arrays share the leading (particle) dimension; attributes may be
    scalar (shape ``(n,)``) or vector (shape ``(n, k)``).
    """

    def __init__(self, ids: Sequence[int], positions: np.ndarray,
                 attributes: Mapping[str, np.ndarray] | None = None):
        self.ids = np.asarray(ids, dtype=np.int64)
        self.positions = np.asarray(positions, dtype=np.float64)
        if self.positions.ndim != 2:
            raise DistributionError(
                f"positions must be (n, ndim), got {self.positions.shape}")
        n = self.ids.shape[0]
        if self.positions.shape[0] != n:
            raise DistributionError(
                f"{n} ids but {self.positions.shape[0]} positions")
        if len(np.unique(self.ids)) != n:
            raise DistributionError("particle ids must be unique")
        self.attributes: dict[str, np.ndarray] = {}
        for name, values in (attributes or {}).items():
            values = np.asarray(values, dtype=np.float64)
            if values.shape[0] != n:
                raise DistributionError(
                    f"attribute {name!r} has {values.shape[0]} entries, "
                    f"expected {n}")
            self.attributes[name] = values

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls, ndim: int,
              attribute_shapes: Mapping[str, tuple[int, ...]] | None = None
              ) -> "ParticleField":
        attrs = {
            name: np.empty((0,) + tuple(shape), dtype=np.float64)
            for name, shape in (attribute_shapes or {}).items()
        }
        return cls(np.empty(0, dtype=np.int64),
                   np.empty((0, ndim)), attrs)

    # -- basic properties -------------------------------------------------------

    @property
    def count(self) -> int:
        return self.ids.shape[0]

    @property
    def ndim(self) -> int:
        return self.positions.shape[1]

    def attribute_names(self) -> list[str]:
        return sorted(self.attributes)

    # -- manipulation ------------------------------------------------------------

    def select(self, mask: np.ndarray) -> "ParticleField":
        """A new field containing the masked/indexed subset."""
        return ParticleField(
            self.ids[mask], self.positions[mask],
            {k: v[mask] for k, v in self.attributes.items()})

    @staticmethod
    def concatenate(fields: Sequence["ParticleField"]) -> "ParticleField":
        fields = [f for f in fields]
        if not fields:
            raise DistributionError("nothing to concatenate")
        names = fields[0].attribute_names()
        for f in fields[1:]:
            if f.attribute_names() != names:
                raise DistributionError(
                    f"attribute sets differ: {names} vs "
                    f"{f.attribute_names()}")
            if f.ndim != fields[0].ndim:
                raise DistributionError("dimensionality differs")
        return ParticleField(
            np.concatenate([f.ids for f in fields]),
            np.concatenate([f.positions for f in fields]),
            {name: np.concatenate([f.attributes[name] for f in fields])
             for name in names})

    def move(self, displacement: np.ndarray) -> None:
        """Advance every particle by ``displacement`` (per-particle or
        broadcastable)."""
        self.positions += displacement

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ParticleField({self.count} particles, ndim={self.ndim}, "
                f"attrs={self.attribute_names()})")
