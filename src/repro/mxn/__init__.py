"""The generalized M×N component (paper §4.1, Fig. 3).

A unification of PAWS ("point-to-point model ... matching 'send' and
'receive' methods") and CUMULVS ("persistent parallel data channels with
periodic transfers"):

* components **register** parallel data fields by DAD handle, with
  allowed access modes (read / write / read-write),
* **connections** are one-shot or persistent-periodic, built from the
  registered descriptors — by either side or by a third party,
* each pairwise transfer is initiated by :meth:`~MxNConnection.data_ready`
  on the source cohort instance and completed by the matching call on
  the destination instance: "no additional synchronization barriers are
  required on either side".
"""

from repro.mxn.api import MxNComponent
from repro.mxn.connection import ConnectionKind, ConnectionSpec, MxNConnection

__all__ = [
    "MxNComponent",
    "MxNConnection",
    "ConnectionKind",
    "ConnectionSpec",
]
