"""M×N connections: one-shot and persistent-periodic transfers.

"For a given M×N transfer operation, each independent pairwise
communication for the overall transfer is initiated when a single
instance of the parallel source cohort (1 of M) invokes the
``dataReady()`` method ...  A matching ``dataReady()`` call at the
corresponding destination cohort process (1 of N) completes the given
pairwise communication.  ...  By breaking down the overall M×N transfer
into these independent asynchronous point-to-point transfers, no
additional synchronization barriers are required on either side."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConnectionError_
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.schedule.bufpool import BufferPool
from repro.schedule.builder import build_region_schedule
from repro.schedule.executor import execute_inter
from repro.simmpi.intercomm import Intercommunicator

#: Tag space for M×N connection data (distinct per connection id).
MXN_DATA_TAG_BASE = 6000
_TAG_SPACE = 512


class ConnectionKind(enum.Enum):
    """Transfer recurrence — the PAWS vs. CUMULVS axis of the unified
    interface."""

    #: PAWS-style: "the data only need be transfered once".
    ONE_SHOT = "one_shot"
    #: CUMULVS-style: "persistent periodic transfers that recur
    #: automatically", every ``period`` dataReady cycles.
    PERSISTENT = "persistent"


@dataclass(frozen=True)
class ConnectionSpec:
    """Everything needed to build a connection — plain data, so a third
    party can construct it from the two registered descriptors alone."""

    src_desc: DistArrayDescriptor
    dst_desc: DistArrayDescriptor
    kind: ConnectionKind = ConnectionKind.ONE_SHOT
    period: int = 1
    connection_id: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConnectionError_(f"period must be >= 1, got {self.period}")
        if self.src_desc.shape != self.dst_desc.shape:
            raise ConnectionError_(
                f"field shapes differ: {self.src_desc.shape} vs "
                f"{self.dst_desc.shape}")


class MxNConnection:
    """One side's handle on an established M×N connection.

    The communication schedule is computed once at connection time and
    reused for every transfer (§2.3 reuse).  ``data_ready()`` is per
    cohort instance and per cycle; it never synchronizes beyond the
    point-to-point messages the schedule itself requires.
    """

    def __init__(self, spec: ConnectionSpec, inter: Intercommunicator,
                 role: str, darray: DistributedArray):
        if role not in ("source", "destination"):
            raise ConnectionError_(
                f"role must be 'source' or 'destination', got {role!r}")
        self.spec = spec
        self.inter = inter
        self.role = role
        self.darray = darray
        self.schedule = build_region_schedule(spec.src_desc, spec.dst_desc)
        self._tag = MXN_DATA_TAG_BASE + (spec.connection_id % _TAG_SPACE)
        self._cycle = 0
        self.transfers_completed = 0
        self._closed = False
        # Persistent connections ride the zero-copy engines: pooled pack
        # buffers on the source, recv-into-destination on the other side.
        self._engine = None
        self.pool = (BufferPool()
                     if spec.kind is ConnectionKind.PERSISTENT else None)

    # -- the dataReady protocol -------------------------------------------

    def data_ready(self) -> bool:
        """Declare this instance's local data consistent for this cycle.

        On transfer cycles the source side posts its schedule sends and
        the destination side completes its schedule receives.  Returns
        True when a transfer happened on this cycle.
        """
        if self._closed:
            raise ConnectionError_("connection is closed")
        cycle = self._cycle
        self._cycle += 1
        if self.spec.kind is ConnectionKind.ONE_SHOT:
            if cycle > 0:
                raise ConnectionError_(
                    "one-shot connection already transferred; create a new "
                    "connection or use a persistent one")
            fire = True
        else:
            fire = cycle % self.spec.period == 0
        if not fire:
            return False
        if self.spec.kind is ConnectionKind.PERSISTENT:
            if self._engine is None:
                if self.role == "source":
                    self._engine = self.schedule.persistent_sender(
                        self.inter, self.darray, tag=self._tag,
                        pool=self.pool)
                else:
                    self._engine = self.schedule.persistent_receiver(
                        self.inter, self.darray, tag=self._tag)
            self._engine.step()
        else:
            side = "src" if self.role == "source" else "dst"
            execute_inter(self.schedule, self.inter, side, self.darray,
                          tag=self._tag)
        self.transfers_completed += 1
        return True

    def close(self) -> None:
        self._closed = True

    # -- metrics ------------------------------------------------------------

    @property
    def bytes_per_transfer(self) -> int:
        return self.schedule.nbytes(self.spec.src_desc.dtype)

    @property
    def pool_stats(self) -> dict | None:
        """Buffer-pool counters (persistent source side; None for
        one-shot connections)."""
        return self.pool.stats.snapshot() if self.pool is not None else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MxNConnection({self.role}, {self.spec.kind.value}, "
                f"period={self.spec.period}, "
                f"{self.schedule.message_count} msgs/transfer)")
