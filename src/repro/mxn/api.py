"""Field registration — the M×N component's public face.

"Parallel components can register their parallel data fields by
providing a handle to a Distributed Array Descriptor (DAD) object ...
The M×N registration process allows a component to express the required
DAD information for any dense rectangular array decomposition, and also
indicates which access modes for M×N transfers with that data field are
allowed (read, write or read/write)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConnectionError_, RegistrationError
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import AccessMode, DistArrayDescriptor
from repro.mxn.connection import (
    ConnectionKind,
    ConnectionSpec,
    MxNConnection,
)
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator


@dataclass
class _FieldEntry:
    darray: DistributedArray
    mode: AccessMode


class MxNComponent:
    """One cohort instance of the M×N component (Fig. 3).

    Instantiate one per rank of the parallel program, co-located with
    the application component; pairs of these mediate inter-framework
    transfers over an intercommunicator.
    """

    def __init__(self, local_comm: Communicator):
        self.local_comm = local_comm
        self._fields: dict[str, _FieldEntry] = {}

    # -- registration -------------------------------------------------------

    def register(self, name: str, darray: DistributedArray,
                 mode: AccessMode = AccessMode.READWRITE) -> None:
        """Register a parallel data field under ``name``."""
        if name in self._fields:
            raise RegistrationError(f"field {name!r} already registered")
        if darray.rank != self.local_comm.rank:
            raise RegistrationError(
                f"field {name!r}: storage is for rank {darray.rank} but "
                f"this instance is rank {self.local_comm.rank}")
        self._fields[name] = _FieldEntry(darray, mode)

    def unregister(self, name: str) -> None:
        if name not in self._fields:
            raise RegistrationError(f"no field {name!r} registered")
        del self._fields[name]

    def field(self, name: str) -> DistributedArray:
        return self._entry(name).darray

    def descriptor(self, name: str) -> DistArrayDescriptor:
        return self._entry(name).darray.descriptor

    def field_names(self) -> list[str]:
        return sorted(self._fields)

    def _entry(self, name: str) -> _FieldEntry:
        try:
            return self._fields[name]
        except KeyError:
            raise RegistrationError(f"no field {name!r} registered") from None

    # -- connection setup -----------------------------------------------------

    def connect(self, inter: Intercommunicator, role: str,
                local_field: str,
                kind: ConnectionKind = ConnectionKind.ONE_SHOT,
                period: int = 1) -> MxNConnection:
        """Create a connection by two-sided handshake.

        Collective over the local cohort; the peer cohort must make the
        matching call with the opposite ``role``.  Descriptors are
        exchanged through the paired M×N components, so neither
        application component needs to know the other's decomposition.
        """
        entry = self._entry(local_field)
        if role == "source" and not entry.mode.allows_read():
            raise ConnectionError_(
                f"field {local_field!r} is not readable (mode {entry.mode})")
        if role == "destination" and not entry.mode.allows_write():
            raise ConnectionError_(
                f"field {local_field!r} is not writable (mode {entry.mode})")

        my_desc = entry.darray.descriptor
        if self.local_comm.rank == 0:
            inter.send((my_desc, kind.value, period), dest=0, tag=90)
            peer_desc, peer_kind, peer_period = inter.recv(source=0, tag=90)
            if (peer_kind, peer_period) != (kind.value, period):
                raise ConnectionError_(
                    f"connection parameter mismatch: local "
                    f"({kind.value}, {period}) vs peer "
                    f"({peer_kind}, {peer_period})")
        else:
            peer_desc = None
        peer_desc = self.local_comm.bcast(peer_desc, root=0)

        if role == "source":
            spec = ConnectionSpec(my_desc, peer_desc, kind, period)
        elif role == "destination":
            spec = ConnectionSpec(peer_desc, my_desc, kind, period)
        else:
            raise ConnectionError_(
                f"role must be 'source' or 'destination', got {role!r}")
        return MxNConnection(spec, inter, role, entry.darray)

    def connect_with_spec(self, inter: Intercommunicator, role: str,
                          local_field: str,
                          spec: ConnectionSpec) -> MxNConnection:
        """Create a connection from a third-party-built spec.

        "M×N connections can be initiated by either the source or
        destination components, or by a third party controller" — the
        spec carries both descriptors, so no handshake is needed and the
        application components stay unaware of the coupling.
        """
        entry = self._entry(local_field)
        mine = spec.src_desc if role == "source" else spec.dst_desc
        if entry.darray.descriptor.cache_key() != mine.cache_key():
            raise ConnectionError_(
                f"field {local_field!r} does not match the spec's "
                f"{role} descriptor")
        return MxNConnection(spec, inter, role, entry.darray)
