"""DRI — the Data Reorganization Interface standard model (paper §5).

"The Data Reorganization Interface Standard (DRI-1.0) is the result of
a DARPA-sponsored effort targeted at the military signal and image
processing community.  DRI datasets are arrays of up to three
dimensions ...  Block and block-cyclic partitions are supported, and
local memory layouts are distinguished from the data distribution.  The
data types specified in the DRI standard include float, double,
complex, double complex, integer, short, unsigned short, long, unsigned
long, char, unsigned char, and byte.  Reorganization operations in DRI
are collective, and are handled at a low level.  The user provides send
and receive buffers and repeatedly call[s] DRI get/put operations until
the operation is complete."

Faithful to that description, this model provides:

* the DRI **type registry** (:data:`DRI_TYPES`),
* :class:`DRIDataset` — ≤3-D arrays, BLOCK / BLOCK_CYCLIC partitions
  per axis, with the *local memory layout* (row- vs column-major)
  independent of the distribution,
* :class:`DRIReorg` — a reorganization plan whose handle exposes the
  standard's low-level staged interface: ``put()`` posts one outgoing
  fragment, ``get()`` drains one incoming fragment, looped "until the
  operation is complete".
"""

from repro.dri.types import DRI_TYPES, dri_dtype
from repro.dri.dataset import BLOCK, BLOCK_CYCLIC, DRIDataset, Partition
from repro.dri.reorg import DRIReorg, DRIReorgHandle

__all__ = [
    "DRI_TYPES",
    "dri_dtype",
    "DRIDataset",
    "Partition",
    "BLOCK",
    "BLOCK_CYCLIC",
    "DRIReorg",
    "DRIReorgHandle",
]
