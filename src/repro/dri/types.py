"""The DRI-1.0 data type registry.

The standard's types, mapped to NumPy dtypes: "float, double, complex,
double complex, integer, short, unsigned short, long, unsigned long,
char, unsigned char, and byte."
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

DRI_TYPES: dict[str, np.dtype] = {
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
    "complex": np.dtype(np.complex64),
    "double_complex": np.dtype(np.complex128),
    "integer": np.dtype(np.int32),
    "short": np.dtype(np.int16),
    "unsigned_short": np.dtype(np.uint16),
    "long": np.dtype(np.int64),
    "unsigned_long": np.dtype(np.uint64),
    "char": np.dtype(np.int8),
    "unsigned_char": np.dtype(np.uint8),
    "byte": np.dtype(np.uint8),
}


def dri_dtype(name: str) -> np.dtype:
    """NumPy dtype of a DRI type name."""
    try:
        return DRI_TYPES[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown DRI type {name!r}; standard types are "
            f"{sorted(DRI_TYPES)}") from None
