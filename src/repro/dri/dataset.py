"""DRI datasets: ≤3-D arrays with per-axis BLOCK/BLOCK_CYCLIC partitions
and an independent local memory layout.

"Local memory layouts are distinguished from the data distribution" —
the same distribution can back row-major or column-major local buffers;
the reorganization machinery translates between them and the global
index space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DistributionError, ReproError
from repro.dad.axis import Block, BlockCyclic, Collapsed
from repro.dad.descriptor import DistArrayDescriptor
from repro.dad.template import CartesianTemplate
from repro.dri.types import dri_dtype
from repro.util.regions import Region


@dataclass(frozen=True)
class Partition:
    """Per-axis partition spec."""

    kind: str                 # "block" | "block_cyclic" | "collapsed"
    nprocs: int = 1
    blocksize: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("block", "block_cyclic", "collapsed"):
            raise ReproError(f"unknown partition kind {self.kind!r}")
        if self.nprocs < 1 or self.blocksize < 1:
            raise ReproError(f"invalid partition {self}")


def BLOCK(nprocs: int) -> Partition:
    return Partition("block", nprocs)


def BLOCK_CYCLIC(nprocs: int, blocksize: int) -> Partition:
    return Partition("block_cyclic", nprocs, blocksize)


COLLAPSED = Partition("collapsed")


class DRIDataset:
    """One distributed dataset in the DRI model."""

    MAX_DIMS = 3  # "arrays of up to three dimensions"

    def __init__(self, shape: Sequence[int],
                 partitions: Sequence[Partition],
                 dtype_name: str = "double",
                 *, layout_order: str = "C"):
        shape = tuple(int(s) for s in shape)
        if not (1 <= len(shape) <= self.MAX_DIMS):
            raise ReproError(
                f"DRI datasets support 1..{self.MAX_DIMS} dimensions, "
                f"got {len(shape)}")
        if len(partitions) != len(shape):
            raise ReproError(
                f"{len(shape)} axes need {len(shape)} partitions, got "
                f"{len(partitions)}")
        if layout_order not in ("C", "F"):
            raise ReproError(f"layout_order must be 'C' or 'F'")
        axes = []
        for extent, part in zip(shape, partitions):
            if part.kind == "collapsed":
                axes.append(Collapsed(extent))
            elif part.kind == "block":
                axes.append(Block(extent, part.nprocs))
            else:
                axes.append(BlockCyclic(extent, part.nprocs,
                                        part.blocksize))
        self.dtype = dri_dtype(dtype_name)
        self.dtype_name = dtype_name
        self.layout_order = layout_order
        self.descriptor = DistArrayDescriptor(
            CartesianTemplate(axes), self.dtype)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.descriptor.shape

    @property
    def nranks(self) -> int:
        return self.descriptor.nranks

    # -- local buffers ------------------------------------------------------

    def local_buffer_size(self, rank: int) -> int:
        """Elements in this rank's local buffer."""
        return self.descriptor.local_volume(rank)

    def allocate_local(self, rank: int) -> np.ndarray:
        """A correctly sized 1-D local buffer."""
        return np.zeros(self.local_buffer_size(rank), dtype=self.dtype)

    def patch_views(self, rank: int,
                    buffer: np.ndarray) -> list[tuple[Region, np.ndarray]]:
        """Writable patch-shaped views into a local 1-D buffer.

        Patches appear in ascending region order; each occupies a
        contiguous buffer segment interpreted in the dataset's local
        memory layout (C or F order) — the layout/distribution split the
        standard requires.
        """
        buffer = np.asarray(buffer)
        if buffer.shape != (self.local_buffer_size(rank),):
            raise DistributionError(
                f"rank {rank} buffer must have shape "
                f"({self.local_buffer_size(rank)},), got {buffer.shape}")
        views = []
        offset = 0
        regions = sorted(self.descriptor.local_regions(rank),
                         key=lambda r: r.lo)
        for region in regions:
            seg = buffer[offset:offset + region.volume]
            views.append(
                (region, seg.reshape(region.shape,
                                     order=self.layout_order)))
            offset += region.volume
        return views

    def fill_local_from_global(self, rank: int, buffer: np.ndarray,
                               global_array: np.ndarray) -> None:
        """Scatter a replicated global array into a local buffer."""
        for region, view in self.patch_views(rank, buffer):
            view[...] = global_array[region.to_slices()]

    def scatter_local_to_global(self, rank: int, buffer: np.ndarray,
                                global_array: np.ndarray) -> None:
        """Write a local buffer's patches back into a global array."""
        for region, view in self.patch_views(rank, buffer):
            global_array[region.to_slices()] = view
