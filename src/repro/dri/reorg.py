"""DRI reorganization: the low-level staged get/put interface.

"Reorganization operations in DRI are collective, and are handled at a
low level.  The user provides send and receive buffers and repeatedly
calling DRI get/put operations until the operation is complete."

A :class:`DRIReorg` plan precomputes the schedule between two datasets;
:meth:`DRIReorg.begin` binds it to this rank's buffers and returns a
handle.  Each ``put()`` posts exactly one outgoing fragment, each
``get()`` completes exactly one incoming fragment — the user loops both
until :meth:`DRIReorgHandle.complete`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError, ScheduleError
from repro.dri.dataset import DRIDataset
from repro.schedule.builder import GLOBAL_CACHE
from repro.simmpi.communicator import Communicator

REORG_TAG = 200


class DRIReorg:
    """A reorganization plan between two DRI datasets."""

    def __init__(self, src: DRIDataset, dst: DRIDataset, *, cache=None):
        if src.shape != dst.shape:
            raise ScheduleError(
                f"dataset shapes differ: {src.shape} vs {dst.shape}")
        if src.dtype != dst.dtype:
            raise ReproError(
                f"DRI reorganization requires matching types, got "
                f"{src.dtype_name!r} and {dst.dtype_name!r}")
        self.src = src
        self.dst = dst
        # Schedules are pure functions of the descriptor pair, so two
        # reorgs over the same templates — or a reorg over a pair the
        # coupling layer already compiled — share one build through the
        # process-wide cache instead of recompiling from scratch.
        self.schedule = (cache if cache is not None else GLOBAL_CACHE).get(
            src.descriptor, dst.descriptor)

    def begin(self, comm: Communicator, sendbuf: np.ndarray | None,
              recvbuf: np.ndarray | None) -> "DRIReorgHandle":
        """Bind the plan to this rank's buffers.

        ``sendbuf`` may be None on ranks outside the source partition,
        ``recvbuf`` likewise for the destination.  Collective in the
        sense that every participating rank must drive its handle to
        completion.
        """
        return DRIReorgHandle(self, comm, sendbuf, recvbuf)


class DRIReorgHandle:
    """Per-rank progress state of one reorganization."""

    def __init__(self, plan: DRIReorg, comm: Communicator,
                 sendbuf: np.ndarray | None,
                 recvbuf: np.ndarray | None):
        self.plan = plan
        self.comm = comm
        me = comm.rank
        self._pending_puts = []
        self._pending_gets = []
        if me < plan.src.nranks:
            if sendbuf is None:
                raise ReproError(f"rank {me} is a source; sendbuf required")
            self._src_views = dict(plan.src.patch_views(me, sendbuf))
            self._pending_puts = list(plan.schedule.sends_from(me))
        if me < plan.dst.nranks:
            if recvbuf is None:
                raise ReproError(
                    f"rank {me} is a destination; recvbuf required")
            self._dst_views = dict(plan.dst.patch_views(me, recvbuf))
            self._pending_gets = list(plan.schedule.recvs_at(me))
        self.puts_done = 0
        self.gets_done = 0

    # -- the staged interface ------------------------------------------------

    def put(self) -> bool:
        """Post one outgoing fragment; returns False when none remain."""
        if not self._pending_puts:
            return False
        dst, region = self._pending_puts.pop(0)
        for owned, view in self._src_views.items():
            if owned.contains(region):
                data = region.view(view, owned)
                self.comm.send(np.ascontiguousarray(data), dst, REORG_TAG)
                self.puts_done += 1
                return True
        raise ScheduleError(
            f"fragment {region} not found in source views")  # pragma: no cover

    def get(self) -> bool:
        """Complete one incoming fragment; returns False when none
        remain.  Blocks until that fragment's message arrives."""
        if not self._pending_gets:
            return False
        src, region = self._pending_gets.pop(0)
        data = self.comm.recv(source=src, tag=REORG_TAG)
        for owned, view in self._dst_views.items():
            if owned.contains(region):
                region.view(view, owned)[...] = np.asarray(data).reshape(
                    region.shape)
                self.gets_done += 1
                return True
        raise ScheduleError(
            f"fragment {region} not found in destination views")  # pragma: no cover

    def complete(self) -> bool:
        """True once every fragment has been put and got."""
        return not self._pending_puts and not self._pending_gets

    def run_to_completion(self) -> None:
        """Convenience: the standard's canonical loop."""
        while not self.complete():
            self.put()
            self.get()
