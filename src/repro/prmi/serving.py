"""High-throughput PRMI serving: event-driven loop, batching, pipelining.

The base endpoints (:mod:`repro.prmi.endpoint`) run lockstep: the callee
cohort calls ``serve_one``/``serve_independent`` knowing what arrives
next, and every invocation pays one transport message each way plus a
blocked caller.  This module adds the serving tier the ROADMAP's
production-scale north star needs:

* :class:`ServerLoop` — the callee side blocks in **one**
  ``wait_any`` across every ingress stream (batch frames, independent
  invocations, collective fragments, subset announcements, shutdown
  tokens) and dispatches whatever arrives, instead of committing to one
  protocol per call site.
* :class:`InvocationPipeline` — the caller side coalesces independent
  invocations into batch frames (:mod:`repro.prmi.frames`), returns
  :class:`InvocationFuture`\\ s instead of blocking per call, and
  enforces backpressure with a bounded in-flight window.  Transmission
  policy (:mod:`repro.prmi.policy`) is chosen per method, orthogonal to
  the method implementation.

Wire protocol
-------------

Framed streams live in the tag band ``[FRAME_TAG_BASE,
INTERNAL_TAG_BASE)`` (:func:`repro.simmpi.constants.frame_tag`), so
they can never collide with application tags or the per-message PRMI
tags 100–106:

========================  =======================================
stream                    carries
========================  =======================================
``frame_tag(0)``          request frames, caller → callee
``frame_tag(1)``          reply frames, callee → caller
``frame_tag(2)``          shutdown tokens, caller → callee
========================  =======================================

A request frame holds ``(seq, method, kwargs)`` entries; ``seq ==
NOREPLY_SEQ`` flags fire-and-forget entries the server must not answer.
Each request frame with at least one reply-expecting entry produces
exactly **one** reply frame of ``(seq, status, value)`` entries, status
``"ok"`` / ``"err"`` (value is the raised exception) / ``"overload"``
(admission control refused the request).  Because a ``(source, tag)``
stream is FIFO, sequence numbers arrive in submission order and the
caller resolves futures by popping its per-callee queue.

Deadlock freedom: the flush deadline (``delay_us``) bounds how long a
request can sit unsent, and the serve loop drains request frames ahead
of committing to a collective gather — see the ``prmi_*`` models in
:mod:`repro.verify.commgraph` for the checked argument.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

from repro.errors import PRMIError, ServerOverloaded
from repro.prmi.endpoint import (
    CalleeEndpoint,
    CallerEndpoint,
    IND_TAG,
    INVOKE_TAG,
    RETURN_TAG,
    SUBSET_TAG,
)
from repro.prmi.frames import decode_frame, encode_frame
from repro.prmi.policy import (
    Batched,
    CachedRead,
    PolicyTable,
    resolve_batch_delay_us,
    resolve_batch_max,
    resolve_inflight_max,
)
from repro.simmpi.constants import ANY_SOURCE, frame_tag
from repro.util.counters import PRMI_LATENCY, PRMI_STATS

__all__ = [
    "ServerLoop",
    "InvocationPipeline",
    "InvocationFuture",
    "REQUEST_STREAM",
    "REPLY_STREAM",
    "CONTROL_STREAM",
    "NOREPLY_SEQ",
]

#: Framed-protocol stream ids (see module docstring).
REQUEST_STREAM = 0
REPLY_STREAM = 1
CONTROL_STREAM = 2

#: Sequence number of fire-and-forget request entries (no reply travels).
NOREPLY_SEQ = -1


class InvocationFuture:
    """A pipelined invocation's eventual result.

    Futures resolve lazily: :meth:`result` drains reply traffic (FIFO
    per source stream) until this future settles — there is no
    background thread.  Latency from submission to settlement is
    recorded in :data:`~repro.util.counters.PRMI_LATENCY`.
    """

    __slots__ = ("method", "seq", "_resolve", "_t0", "_done",
                 "_value", "_error", "_source")

    def __init__(self, method: str, seq: int, resolve=None):
        self.method = method
        self.seq = seq
        self._resolve = resolve
        self._t0 = time.perf_counter()
        self._done = False
        self._value: Any = None
        self._error: BaseException | None = None
        self._source = -1

    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        """Block until the reply arrives; return the value or raise the
        error the server shipped (:class:`ServerOverloaded` when
        admission control refused the request)."""
        if not self._done:
            if self._resolve is None:  # pragma: no cover - guard
                raise PRMIError(
                    f"future for {self.method!r} has no resolver")
            self._resolve(self)
            if not self._done:  # pragma: no cover - protocol guard
                raise PRMIError(
                    f"reply stream drained without settling "
                    f"{self.method!r} seq {self.seq}")
        if self._error is not None:
            raise self._error
        return self._value

    def _settle(self, value: Any = None,
                error: BaseException | None = None) -> None:
        self._done = True
        self._value = value
        self._error = error
        PRMI_LATENCY.record(time.perf_counter() - self._t0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = ("error" if self._error is not None else
                 "done" if self._done else "pending")
        return f"InvocationFuture({self.method!r}, seq={self.seq}, {state})"


def _completed(method: str, value: Any) -> InvocationFuture:
    fut = InvocationFuture(method, NOREPLY_SEQ)
    fut._settle(value=value)
    return fut


class ServerLoop:
    """Event-driven callee serving: one blocked wait, every stream.

    Every callee rank runs :meth:`serve_forever` together.  The loop
    exits once a shutdown token has arrived from every remote rank
    (each caller's :meth:`InvocationPipeline.close` sends one to every
    callee).  ``queue_max`` bounds the ingress queue: when one greedy
    drain of the request stream uncovers more requests than the cap,
    the excess are refused with ``"overload"`` replies (fire-and-forget
    excess is dropped) — the admission-control half of backpressure.
    """

    def __init__(self, callee: CalleeEndpoint, *,
                 queue_max: int | None = None):
        self.callee = callee
        self.inter = callee.inter
        self.queue_max = resolve_inflight_max(queue_max)
        self._stopped: set[int] = set()
        #: Dispatch tallies, returned by :meth:`serve_forever`.
        self.served = {"collective": 0, "independent": 0, "frames": 0,
                       "requests": 0, "overloads": 0, "errors": 0,
                       "subsets": 0}

    # -- ingress specs -------------------------------------------------------

    def _specs(self) -> list[tuple[int, int, int]]:
        """Match specs for one wait, in priority order: ``wait_any``
        scans them first-to-last each wake, so request frames drain
        ahead of collective fragments (a caller blocked on a batched
        reply can never stall another caller's collective gather), and
        shutdown tokens rank last so no work is abandoned."""
        ictx = self.inter.recv_context
        me = self.callee.local_comm.rank
        specs = [(ictx, ANY_SOURCE, frame_tag(REQUEST_STREAM)),
                 (ictx, ANY_SOURCE, IND_TAG)]
        if me == 0:
            # Subset announcements enter the cohort at rank 0 and fan
            # out over the local binomial tree (endpoint.accept_subset).
            specs.append((ictx, 0, SUBSET_TAG))
        else:
            parent = me - (me & -me)
            specs.append((self.callee.local_comm.context, parent,
                          SUBSET_TAG))
        specs.extend((ictx, mm, INVOKE_TAG)
                     for mm in self.callee._expected_callers())
        specs.append((ictx, ANY_SOURCE, frame_tag(CONTROL_STREAM)))
        return specs

    # -- loop ----------------------------------------------------------------

    def serve_forever(self) -> dict[str, int]:
        """Serve until every remote rank has sent its shutdown token;
        returns the dispatch tallies."""
        want = self.inter.remote_size
        while len(self._stopped) < want:
            env = self.inter.wait_any(self._specs())
            self._handle(env)
        return dict(self.served)

    def serve_events(self, count: int) -> dict[str, int]:
        """Serve exactly ``count`` ingress events (tests/benchmarks that
        drive the loop without a shutdown phase)."""
        for _ in range(count):
            env = self.inter.wait_any(self._specs())
            self._handle(env)
        return dict(self.served)

    def _handle(self, env) -> None:
        tag = env.tag
        if tag == frame_tag(REQUEST_STREAM):
            self._on_request_frames(env)
        elif tag == IND_TAG:
            method, kwargs = env.payload
            self.callee._dispatch_independent(method, kwargs, env.source)
            self.served["independent"] += 1
        elif tag == SUBSET_TAG:
            self.callee._install_subset(env.payload)
            self.served["subsets"] += 1
        elif tag == INVOKE_TAG:
            self._on_collective(env)
        elif tag == frame_tag(CONTROL_STREAM):
            self._stopped.add(env.source)
        else:  # pragma: no cover - spec list and handlers in lockstep
            raise PRMIError(f"serve loop matched unexpected tag {tag}")

    def _on_collective(self, env) -> None:
        """One fragment arrived; gather the rest of the collective
        invocation (its callers are committed by the collective
        contract) and dispatch."""
        invocations = [env.payload if mm == env.source
                       else self.inter.recv(source=mm, tag=INVOKE_TAG)
                       for mm in self.callee._expected_callers()]
        self.callee._dispatch_collective(invocations)
        self.served["collective"] += 1

    def _on_request_frames(self, env) -> None:
        """Decode and execute batch frames; one reply frame per ingress
        frame that expects any reply.

        All frames already queued are drained greedily so the admission
        decision sees the true ingress depth; requests beyond
        ``queue_max`` are refused with ``"overload"`` status.
        """
        frames = [(env.source, decode_frame(env.payload))]
        while True:
            st = self.inter.iprobe(tag=frame_tag(REQUEST_STREAM))
            if st is None:
                break
            buf = self.inter.recv(source=st.source,
                                  tag=frame_tag(REQUEST_STREAM))
            frames.append((st.source, decode_frame(buf)))
        depth = sum(len(entries) for _, entries in frames)
        PRMI_STATS.gauge_add("queue_depth", depth)
        try:
            budget = self.queue_max
            for source, entries in frames:
                replies: list[tuple[int, str, Any]] = []
                for seq, method, kwargs in entries:
                    self.served["requests"] += 1
                    if budget <= 0:
                        self.served["overloads"] += 1
                        PRMI_STATS.add("overloads")
                        if seq != NOREPLY_SEQ:
                            replies.append((seq, "overload",
                                            f"ingress queue cap "
                                            f"{self.queue_max} exceeded"))
                        continue
                    budget -= 1
                    try:
                        _spec, result = self.callee.execute_local(
                            method, kwargs)
                    except Exception as exc:  # noqa: BLE001 - shipped back
                        self.served["errors"] += 1
                        if seq != NOREPLY_SEQ:
                            replies.append((seq, "err", exc))
                        continue
                    if seq != NOREPLY_SEQ:
                        replies.append((seq, "ok", result))
                if replies:
                    self.inter.send(encode_frame(replies), dest=source,
                                    tag=frame_tag(REPLY_STREAM))
                self.served["frames"] += 1
        finally:
            PRMI_STATS.gauge_add("queue_depth", -depth)


class InvocationPipeline:
    """Caller-side batching, pipelining, and backpressure.

    Wraps a :class:`CallerEndpoint` whose callee cohort runs a
    :class:`ServerLoop`.  :meth:`submit` routes an independent
    invocation through its method's transmission policy; batched
    requests coalesce into one frame per (caller, callee) flush, and
    :meth:`invoke_collective` pipelines collective calls by deferring
    only the return receive.  ``inflight_max`` bounds
    submitted-but-unresolved invocations: at the cap, ``overflow="block"``
    resolves the oldest future to make room and ``overflow="raise"``
    raises :class:`ServerOverloaded` at the call site.
    """

    def __init__(self, caller: CallerEndpoint, *,
                 policies: PolicyTable | None = None,
                 batch_max: int | None = None,
                 delay_us: int | None = None,
                 inflight_max: int | None = None,
                 overflow: str = "block"):
        if overflow not in ("block", "raise"):
            raise PRMIError(
                f"overflow policy must be 'block' or 'raise', "
                f"got {overflow!r}")
        self.caller = caller
        self.inter = caller.inter
        self.policies = policies if policies is not None else PolicyTable()
        self.batch_max = resolve_batch_max(batch_max)
        self.delay_us = resolve_batch_delay_us(delay_us)
        self.inflight_max = resolve_inflight_max(inflight_max)
        self.overflow = overflow
        #: callee -> [(seq, method, kwargs, future-or-None)], unsent.
        self._pending: dict[int, list] = {}
        #: callee -> perf_counter() when its oldest pending was queued.
        self._pending_t0: dict[int, float] = {}
        #: callee -> futures awaiting reply-frame entries, FIFO.
        self._awaiting: dict[int, deque] = {}
        #: pipelined collective futures, FIFO (single return stream).
        self._collective: deque = deque()
        self._seq = 0
        self._inflight = 0
        self._closed = False

    # -- bookkeeping ---------------------------------------------------------

    def _inc_inflight(self) -> None:
        self._inflight += 1
        PRMI_STATS.gauge_add("inflight", 1)

    def _dec_inflight(self) -> None:
        self._inflight -= 1
        PRMI_STATS.gauge_add("inflight", -1)

    def _admit(self) -> None:
        while self._inflight >= self.inflight_max:
            if self.overflow == "raise":
                PRMI_STATS.add("overloads")
                raise ServerOverloaded(
                    f"{self._inflight} invocations in flight >= "
                    f"inflight_max {self.inflight_max}")
            self._resolve_oldest()

    def _resolve_oldest(self) -> None:
        """Make room under the in-flight cap by settling the oldest
        outstanding future (errors stay in the future for its owner)."""
        for callee, queue in self._awaiting.items():
            if queue:
                self._drain_replies(callee, queue[0])
                return
        if self._collective:
            self._drain_collective(self._collective[0])
            return
        if any(self._pending.values()):
            # Nothing awaits yet — ship the pending batches first; their
            # no-reply entries leave the window at flush time.
            self.flush()
            return
        raise PRMIError(  # pragma: no cover - accounting guard
            "in-flight window full but nothing pending or awaited")

    # -- submission ----------------------------------------------------------

    def submit(self, method: str, callee_rank: int,
               **kwargs: Any) -> InvocationFuture | None:
        """Route one independent invocation through its transmission
        policy.  Returns an :class:`InvocationFuture` (already settled
        for sync/cached policies), or ``None`` when no reply will travel
        (one-way methods, :class:`~repro.prmi.policy.OneWay` policy)."""
        if self._closed:
            raise PRMIError("pipeline is closed")
        spec = self.caller.port_type.method(method)
        if spec.invocation != "independent":
            raise PRMIError(
                f"method {method!r} is declared collective; use "
                f"invoke_collective")
        if spec.parallel_params:
            raise PRMIError(
                "pipelined independent invocations cannot carry "
                "parallel arguments")
        policy = self.policies.for_method(spec)
        expects_reply = policy.expects_reply(spec)
        cached = isinstance(policy, CachedRead)
        if cached:
            hit, value = policy.lookup(method, kwargs)
            if hit:
                return _completed(method, value)
        self._admit()
        PRMI_STATS.add("invocations")
        self.caller.stats.calls += 1
        if expects_reply:
            fut = InvocationFuture(
                method, self._seq,
                resolve=lambda f, c=callee_rank: self._ensure_resolved(c, f))
            self._seq += 1
        else:
            fut = None
        pend = self._pending.setdefault(callee_rank, [])
        if not pend:
            self._pending_t0[callee_rank] = time.perf_counter()
        pend.append((fut.seq if fut is not None else NOREPLY_SEQ,
                     method, kwargs, fut))
        self._inc_inflight()
        if not policy.batched:
            self._flush_callee(callee_rank, "flush_forced")
        else:
            bmax = policy.batch_max if isinstance(policy, Batched) \
                else self.batch_max
            delay = policy.delay_us if isinstance(policy, Batched) \
                else self.delay_us
            if len(pend) >= bmax:
                self._flush_callee(callee_rank, "flush_full")
            else:
                age_us = (time.perf_counter()
                          - self._pending_t0[callee_rank]) * 1e6
                if age_us >= delay:
                    self._flush_callee(callee_rank, "flush_deadline")
        if fut is not None and not policy.batched:
            # Sync / cached-read contract: the reply is awaited before
            # submit returns (the future comes back already settled).
            self._drain_replies(callee_rank, fut)
            if cached and fut._error is None:
                policy.store(method, kwargs, fut._value)
        return fut

    def invoke_collective(self, method: str,
                          **kwargs: Any) -> InvocationFuture:
        """Pipelined collective invocation: ship the fragments and serve
        the argument pulls now, defer only the return receive.  Pending
        batches flush first so per-callee program order is preserved.
        Returns an already-settled future for one-way methods and on
        subset-out ranks."""
        if self._closed:
            raise PRMIError("pipeline is closed")
        self.flush()
        sent = self.caller._invoke_send(method, kwargs)
        if sent is None:
            return _completed(method, None)
        spec, me = sent
        if spec.oneway:
            return _completed(method, None)
        self._admit()
        PRMI_STATS.add("invocations")
        PRMI_STATS.add("pipelined_calls")
        fut = InvocationFuture(method, self._seq,
                               resolve=self._drain_collective)
        self._seq += 1
        fut._source = me % self.caller.n
        self._collective.append(fut)
        self._inc_inflight()
        return fut

    # -- flushing ------------------------------------------------------------

    def flush(self, callee_rank: int | None = None) -> None:
        """Force-ship pending batches (one callee, or all of them)."""
        targets = ([callee_rank] if callee_rank is not None
                   else [c for c, p in self._pending.items() if p])
        for callee in targets:
            self._flush_callee(callee, "flush_forced")

    def poll(self) -> None:
        """Deadline sweep: flush every pending batch whose oldest
        request has waited at least ``delay_us``.  Flush triggers are
        otherwise evaluated at submit time (there is no background
        flusher thread) — long gaps between submits should poll."""
        now = time.perf_counter()
        for callee, t0 in list(self._pending_t0.items()):
            if self._pending.get(callee) and (now - t0) * 1e6 >= self.delay_us:
                self._flush_callee(callee, "flush_deadline")

    def _flush_callee(self, callee: int, reason: str) -> None:
        pend = self._pending.get(callee)
        if not pend:
            return
        self._pending[callee] = []
        self._pending_t0.pop(callee, None)
        frame = encode_frame([(seq, method, kwargs)
                              for seq, method, kwargs, _fut in pend])
        PRMI_STATS.add("frames_sent")
        PRMI_STATS.add("frame_requests", len(pend))
        PRMI_STATS.add("frame_bytes", frame.nbytes)
        PRMI_STATS.add(reason)
        self.inter.send(frame, dest=callee, tag=frame_tag(REQUEST_STREAM))
        queue = self._awaiting.setdefault(callee, deque())
        for _seq, _method, _kwargs, fut in pend:
            if fut is not None:
                queue.append(fut)
            else:
                # Fire-and-forget: leaves the in-flight window when the
                # request hits the wire.
                self._dec_inflight()

    # -- resolution ----------------------------------------------------------

    def _ensure_resolved(self, callee: int, target: InvocationFuture) -> None:
        if any(entry[3] is target
               for entry in self._pending.get(callee, ())):
            self._flush_callee(callee, "flush_forced")
        self._drain_replies(callee, target)

    def _drain_replies(self, callee: int,
                       target: InvocationFuture | None = None) -> None:
        """Receive reply frames from ``callee``, settling futures FIFO,
        until ``target`` settles (or, with no target, until nothing is
        awaited from that callee)."""
        queue = self._awaiting.get(callee)
        if queue is None:
            return
        while queue and (target is None or not target._done):
            buf = self.inter.recv(source=callee,
                                  tag=frame_tag(REPLY_STREAM))
            for seq, status, value in decode_frame(buf):
                if not queue:  # pragma: no cover - protocol guard
                    raise PRMIError(
                        f"reply frame entry seq {seq} with no future "
                        f"awaiting callee {callee}")
                fut = queue.popleft()
                if fut.seq != seq:  # pragma: no cover - protocol guard
                    raise PRMIError(
                        f"reply stream out of order: expected seq "
                        f"{fut.seq}, got {seq}")
                if status == "ok":
                    fut._settle(value=value)
                elif status == "overload":
                    fut._settle(error=ServerOverloaded(str(value)))
                else:
                    fut._settle(error=value if isinstance(value, BaseException)
                                else PRMIError(str(value)))
                self._dec_inflight()

    def _drain_collective(self, target: InvocationFuture) -> None:
        """Settle pipelined collective futures FIFO until ``target``
        settles — returns arrive in invocation order on the per-source
        RETURN stream."""
        while not target._done:
            if not self._collective:  # pragma: no cover - protocol guard
                raise PRMIError("collective future not in pipeline order")
            fut = self._collective.popleft()
            value = self.inter.recv(source=fut._source, tag=RETURN_TAG)
            fut._settle(value=value)
            self._dec_inflight()

    def drain(self) -> None:
        """Flush and settle everything outstanding.  Errors are kept in
        their futures (raised when their owners call ``result()``)."""
        self.flush()
        for callee in list(self._awaiting):
            self._drain_replies(callee)
        while self._collective:
            self._drain_collective(self._collective[-1])

    # -- lifecycle -----------------------------------------------------------

    def engage_subset(self, ranks: list[int]) -> CallerEndpoint:
        """Drain the pipeline, then engage the sub-setting mechanism
        (collective over the full caller cohort); the pipeline continues
        on the new endpoint.  The callee's :class:`ServerLoop` picks up
        the announcement event-driven — no serve-side call needed."""
        self.drain()
        self.caller = self.caller.engage_subset(ranks)
        return self.caller

    def close(self) -> None:
        """Drain, then send one shutdown token to every callee rank
        (the :class:`ServerLoop` exits once every caller has closed)."""
        if self._closed:
            return
        self.drain()
        for callee in range(self.inter.remote_size):
            self.inter.send("stop", dest=callee,
                            tag=frame_tag(CONTROL_STREAM))
        self._closed = True

    def __enter__(self) -> "InvocationPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
