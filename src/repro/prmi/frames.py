"""Batch frame codec: many invocations, one wire message.

The request-at-a-time PRMI path pays one pickled transport message per
invocation, so at high invocation rates the per-message overhead —
serialization, matching, wakeups — dominates the wire bytes.  Following
the message-combining idiom of :mod:`repro.schedule.packing` (one
contiguous buffer per communicating pair, positional layout agreed
without metadata exchange), a *batch frame* coalesces every request a
(caller, callee) pair exchanges per flush into one message:

``[u64 header length | header | padded, packed array payloads]``

The header is **one** pickle for the whole frame: the entry list with
every NumPy array leaf replaced by an :class:`_ArrayRef` index, plus the
(shape, dtype, offset, nbytes) table of the packed payload region.
Array bytes are packed back-to-back (16-byte aligned) after the header,
so decoding reconstructs each array as a zero-copy view into the
received frame — no per-request pickling on either side, which is
exactly what lint rule V107 enforces everywhere else.

Entries are ``(seq, name, payload)`` triples and deliberately
direction-agnostic: the caller encodes ``(seq, method, kwargs)`` request
frames, the serve loop encodes ``(seq, status, value)`` reply frames
with the same codec.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Sequence

import numpy as np

__all__ = ["encode_frame", "decode_frame", "FrameError"]

#: Alignment of each packed array payload (bytes) — keeps decoded views
#: aligned for every native dtype.
_ALIGN = 16

_LEN = struct.Struct("<Q")


class FrameError(ValueError):
    """A frame failed to decode (truncated or corrupt)."""


class _ArrayRef:
    """Placeholder for an extracted array leaf: index into the frame's
    payload table."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __reduce__(self):
        return (_ArrayRef, (self.index,))


def _extract(value: Any, arrays: list[np.ndarray]) -> Any:
    """Replace every packable ndarray leaf in ``value`` with an
    :class:`_ArrayRef`, appending the leaves to ``arrays``.  Containers
    are rebuilt (the caller's objects are never mutated); object-dtype
    arrays stay in the pickled header — raw bytes cannot carry them."""
    if isinstance(value, np.ndarray) and value.dtype != object:
        # ascontiguousarray promotes 0-d to 1-d; reshape restores it.
        arrays.append(np.ascontiguousarray(value).reshape(value.shape))
        return _ArrayRef(len(arrays) - 1)
    if isinstance(value, dict):
        return {k: _extract(v, arrays) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(_extract(v, arrays) for v in value)
    if isinstance(value, list):
        return [_extract(v, arrays) for v in value]
    return value


def _restore(value: Any, arrays: Sequence[np.ndarray]) -> Any:
    if isinstance(value, _ArrayRef):
        return arrays[value.index]
    if isinstance(value, dict):
        return {k: _restore(v, arrays) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(_restore(v, arrays) for v in value)
    if isinstance(value, list):
        return [_restore(v, arrays) for v in value]
    return value


def _pad(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def encode_frame(entries: Sequence[tuple[int, str, Any]]) -> np.ndarray:
    """Encode ``(seq, name, payload)`` entries into one frame buffer.

    Returns a 1-D ``uint8`` array (transports treat it as raw bytes; on
    the procs backend it rides a shared-memory slot untouched).
    """
    arrays: list[np.ndarray] = []
    wire_entries = [(int(seq), name, _extract(payload, arrays))
                    for seq, name, payload in entries]
    metas = []
    offset = 0
    for arr in arrays:
        offset = _pad(offset)
        metas.append((arr.shape, arr.dtype.str, offset, arr.nbytes))
        offset += arr.nbytes
    header = pickle.dumps((wire_entries, metas),
                          protocol=pickle.HIGHEST_PROTOCOL)
    payload_base = _pad(_LEN.size + len(header))
    frame = np.zeros(payload_base + offset, dtype=np.uint8)
    frame[:_LEN.size] = np.frombuffer(_LEN.pack(len(header)), dtype=np.uint8)
    frame[_LEN.size:_LEN.size + len(header)] = np.frombuffer(
        header, dtype=np.uint8)
    for arr, (_shape, _dt, off, nbytes) in zip(arrays, metas):
        if nbytes:
            frame[payload_base + off:payload_base + off + nbytes] = \
                arr.reshape(-1).view(np.uint8)
    return frame


def decode_frame(frame: Any) -> list[tuple[int, str, Any]]:
    """Decode a frame back into its ``(seq, name, payload)`` entries.

    Array leaves come back as views into ``frame`` (zero-copy decode)
    when ``frame`` is a writable buffer, read-only views otherwise —
    either way no per-request deserialization happens.
    """
    buf = memoryview(np.asarray(frame).reshape(-1).view(np.uint8))
    if len(buf) < _LEN.size:
        raise FrameError(f"frame of {len(buf)} bytes has no header length")
    (hlen,) = _LEN.unpack(buf[:_LEN.size])
    if _LEN.size + hlen > len(buf):
        raise FrameError(
            f"frame header claims {hlen} bytes but only "
            f"{len(buf) - _LEN.size} follow — truncated frame")
    try:
        wire_entries, metas = pickle.loads(buf[_LEN.size:_LEN.size + hlen])
    except Exception as exc:  # noqa: BLE001 - surface as protocol error
        raise FrameError(f"frame header failed to unpickle: {exc}") from exc
    payload_base = _pad(_LEN.size + hlen)
    arrays: list[np.ndarray] = []
    for shape, dtype_str, off, nbytes in metas:
        end = payload_base + off + nbytes
        if end > len(buf):
            raise FrameError(
                f"frame payload table overruns the buffer "
                f"({end} > {len(buf)})")
        arr = np.frombuffer(buf, dtype=np.dtype(dtype_str),
                            count=nbytes // np.dtype(dtype_str).itemsize,
                            offset=payload_base + off).reshape(shape)
        arrays.append(arr)
    return [(seq, name, _restore(payload, arrays))
            for seq, name, payload in wire_entries]
