"""Transmission policies, separated from method implementation.

Following Walker et al.'s argument (PAPERS.md, "Promoting Component
Reuse by Separating Transmission Policy from Implementation"), *how* an
invocation travels — synchronously, fire-and-forget, coalesced into
batch frames, or answered from a cache — is a property of the
**connection**, not of the method body.  A :class:`PolicyTable` binds a
policy per method (or one default per port) on the caller side; the
callee's ``impl`` never changes, and the same port can be rebound under
a different table without touching either component.

Policies
--------

* :class:`Sync` — ship immediately, block for the return value (the
  classic RMI contract; the default for returning methods).
* :class:`OneWay` — ship immediately, expect no reply even if the
  method returns one (the caller discards it at the source: the request
  is flagged no-reply so the server never serializes the result).  The
  default for ``oneway``-declared methods.
* :class:`Batched` — coalesce requests into batch frames
  (:mod:`repro.prmi.frames`): a frame flushes when it reaches
  ``batch_max`` requests or when the oldest pending request has waited
  ``delay_us`` microseconds, whichever comes first (the deadline is the
  deadlock-freedom half of the design — see
  ``prmi_batch_deadlock_model`` in :mod:`repro.verify.commgraph`).
* :class:`CachedRead` — memoize results per argument tuple on the
  caller side; repeat invocations are answered locally with zero wire
  traffic until :meth:`CachedRead.invalidate` is called.  Only sound
  for read-like methods; staleness is the caller's explicit contract.

``batch_max``/``delay_us`` default from ``REPRO_BATCH_MAX`` /
``REPRO_BATCH_DELAY_US`` (explicit arguments win), the same
arg > env > default precedence the planner knobs use.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.cca.sidl import MethodSpec
from repro.errors import PRMIError
from repro.util.counters import PRMI_STATS

__all__ = [
    "TransmissionPolicy",
    "Sync",
    "OneWay",
    "Batched",
    "CachedRead",
    "PolicyTable",
    "resolve_batch_max",
    "resolve_batch_delay_us",
    "resolve_inflight_max",
]

#: Built-in defaults behind the env knobs.
DEFAULT_BATCH_MAX = 32
DEFAULT_BATCH_DELAY_US = 200
DEFAULT_INFLIGHT_MAX = 1024


def _env_int(name: str, default: int, *, minimum: int = 1) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise PRMIError(f"{name}={raw!r} is not an integer") from exc
    if value < minimum:
        raise PRMIError(f"{name}={value} must be >= {minimum}")
    return value


def resolve_batch_max(arg: int | None = None) -> int:
    """Batch-size cap: explicit arg > ``REPRO_BATCH_MAX`` > 32."""
    if arg is not None:
        if arg < 1:
            raise PRMIError(f"batch_max={arg} must be >= 1")
        return int(arg)
    return _env_int("REPRO_BATCH_MAX", DEFAULT_BATCH_MAX)


def resolve_batch_delay_us(arg: int | None = None) -> int:
    """Flush deadline (µs): explicit arg > ``REPRO_BATCH_DELAY_US`` > 200."""
    if arg is not None:
        if arg < 0:
            raise PRMIError(f"batch_delay_us={arg} must be >= 0")
        return int(arg)
    return _env_int("REPRO_BATCH_DELAY_US", DEFAULT_BATCH_DELAY_US,
                    minimum=0)


def resolve_inflight_max(arg: int | None = None) -> int:
    """In-flight cap per endpoint: arg > ``REPRO_INFLIGHT_MAX`` > 1024."""
    if arg is not None:
        if arg < 1:
            raise PRMIError(f"inflight_max={arg} must be >= 1")
        return int(arg)
    return _env_int("REPRO_INFLIGHT_MAX", DEFAULT_INFLIGHT_MAX)


class TransmissionPolicy:
    """Base class: how one method's invocations travel."""

    #: Display / table name.
    name = "abstract"
    #: Coalesce into batch frames (vs one immediate frame per request).
    batched = False

    def expects_reply(self, spec: MethodSpec) -> bool:
        """Whether the caller should await (and the server produce) a
        reply for this method under this policy."""
        return not spec.oneway

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Sync(TransmissionPolicy):
    """Ship immediately, block on the reply — classic RMI."""

    name = "sync"


class OneWay(TransmissionPolicy):
    """Fire-and-forget: no reply travels, whatever the method returns."""

    name = "one-way"

    def expects_reply(self, spec: MethodSpec) -> bool:
        return False


class Batched(TransmissionPolicy):
    """Coalesce into batch frames under a (count, deadline) trigger."""

    name = "batched"
    batched = True

    def __init__(self, batch_max: int | None = None,
                 delay_us: int | None = None):
        self.batch_max = resolve_batch_max(batch_max)
        self.delay_us = resolve_batch_delay_us(delay_us)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Batched(batch_max={self.batch_max}, "
                f"delay_us={self.delay_us})")


def _canonical(value: Any) -> Any:
    """A hashable mirror of an argument structure (cache key leaf)."""
    if isinstance(value, np.ndarray):
        return ("__ndarray__", value.shape, value.dtype.str,
                value.tobytes())
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


class CachedRead(TransmissionPolicy):
    """Caller-side result cache with explicit invalidation.

    The cache is per-policy-object: bind one instance per method (or
    share one across methods of a port — keys include the method name).
    """

    name = "cached-read"

    def __init__(self):
        self._cache: dict[Any, Any] = {}

    def key(self, method: str, kwargs: dict) -> Any:
        return (method, _canonical(kwargs))

    def lookup(self, method: str, kwargs: dict) -> tuple[bool, Any]:
        k = self.key(method, kwargs)
        if k in self._cache:
            PRMI_STATS.add("cached_read_hits")
            return True, self._cache[k]
        return False, None

    def store(self, method: str, kwargs: dict, value: Any) -> None:
        self._cache[self.key(method, kwargs)] = value

    def invalidate(self, method: str | None = None) -> int:
        """Drop cached results (all of them, or one method's); returns
        the number of entries dropped."""
        if method is None:
            n = len(self._cache)
            self._cache.clear()
            return n
        victims = [k for k in self._cache if k[0] == method]
        for k in victims:
            del self._cache[k]
        return len(victims)

    def __len__(self) -> int:
        return len(self._cache)


class PolicyTable:
    """Per-method transmission policies with a per-port default.

    ``PolicyTable(default=Batched(), get_config=CachedRead())`` batches
    everything except ``get_config``, which is served from cache.  A
    method with no entry and no table default falls back on the spec:
    ``oneway`` methods travel :class:`OneWay`, the rest :class:`Sync` —
    so an empty table reproduces the unbatched protocol exactly.
    """

    def __init__(self, default: TransmissionPolicy | None = None,
                 **per_method: TransmissionPolicy):
        for name, pol in per_method.items():
            if not isinstance(pol, TransmissionPolicy):
                raise PRMIError(
                    f"policy for method {name!r} must be a "
                    f"TransmissionPolicy, got {type(pol).__name__}")
        if default is not None and not isinstance(default,
                                                  TransmissionPolicy):
            raise PRMIError(
                f"default policy must be a TransmissionPolicy, got "
                f"{type(default).__name__}")
        self.default = default
        self.per_method = dict(per_method)

    _SYNC = Sync()
    _ONE_WAY = OneWay()

    def for_method(self, spec: MethodSpec) -> TransmissionPolicy:
        pol = self.per_method.get(spec.name, self.default)
        if pol is None:
            return self._ONE_WAY if spec.oneway else self._SYNC
        if spec.oneway and pol.expects_reply(spec):  # pragma: no cover
            # expects_reply already consults spec.oneway; guard kept for
            # custom policy subclasses that forget to.
            raise PRMIError(
                f"policy {pol.name!r} would await a reply from one-way "
                f"method {spec.name!r}")
        return pol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PolicyTable(default={self.default!r}, "
                f"{', '.join(f'{k}={v!r}' for k, v in self.per_method.items())})")
