"""PRMI caller/callee endpoints — the SCIRun2 invocation model (§4.2).

Collective calls pair M caller ranks with N callee ranks:

* callee rank ``n`` is invoked by caller rank ``n % M`` — callers with
  several such callees create *ghost invocations*;
* caller rank ``m`` receives its return from callee rank ``m % N`` —
  callees serving several such callers create *ghost return values*;
* when M > N a callee receives several (merged) invocations whose
  arguments must agree — "argument and return value data is assumed to
  be the same across the processes of a component".

Parallel arguments are *pulled*: the invocation ships only descriptor
metadata; the callee announces its desired layout (pre-registered, or
lazily from inside the method body — the paper's two strategies), both
cohorts build the same M×N schedule from the descriptor pair, and the
data moves as schedule point-to-point messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import (
    ParticipationError,
    PRMIError,
    SimpleArgumentMismatch,
)
from repro.cca.sidl import MethodSpec, PortType
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.prmi.args import LazyParallelArg, ParallelArg
from repro.schedule.builder import build_region_schedule
from repro.schedule.executor import execute_inter
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator

INVOKE_TAG = 100
RETURN_TAG = 101
PULL_TAG = 102
DATA_TAG = 103
IND_TAG = 104
IND_RETURN_TAG = 105
SUBSET_TAG = 106


@dataclass
class InvocationStats:
    """Bookkeeping for experiments E10/E11."""

    calls: int = 0
    ghost_invocations: int = 0
    ghost_returns: int = 0
    merged_invocations: int = 0
    simple_checks: int = 0
    subset_engagements: int = 0


def _args_equal(a: Any, b: Any) -> bool:
    """Structural equality that tolerates NumPy values.

    Arrays must match in dtype as well as shape and contents:
    ``np.array_equal`` calls ``float32([1,2]) == float64([1,2])`` equal,
    but the cohorts would build byte-incompatible schedules from them.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.shape == b.shape and a.dtype == b.dtype
                and bool(np.array_equal(a, b)))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_args_equal(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(_args_equal(x, y) for x, y in zip(a, b)))
    return bool(a == b)


def _package_result(spec: MethodSpec, result: Any) -> Any:
    """Validate and normalize a callee implementation's result against
    the method's out-parameter declaration.

    Methods with ``out``/``inout`` parameters must return a dict holding
    one key per out parameter, plus ``"return"`` when the method also
    declares a return value.  Plain methods pass through unchanged.
    """
    out_names = [p.name for p in spec.out_params]
    if not out_names:
        return result
    if any(p.kind == "parallel" for p in spec.out_params):
        raise PRMIError(
            f"method {spec.name!r}: parallel out parameters are not "
            f"supported; return results through an M×N connection")
    expected = set(out_names) | ({"return"} if spec.returns else set())
    if not isinstance(result, dict) or set(result) != expected:
        raise PRMIError(
            f"method {spec.name!r} declares out parameters "
            f"{out_names}; the implementation must return a dict with "
            f"keys {sorted(expected)}, got {result!r}")
    return result


class CallerEndpoint:
    """The uses side of a parallel remote port."""

    def __init__(self, local_comm: Communicator, inter: Intercommunicator,
                 port_type: PortType, *, verify_simple: bool = False,
                 _subset: list[int] | None = None,
                 _participation_comm: Communicator | None = None):
        self.local_comm = local_comm
        self.inter = inter
        self.port_type = port_type
        #: Check the CCA convention that simple arguments match across
        #: callers.  Off by default — the paper notes frameworks "may not
        #: actively enforce this policy because checking ... might incur
        #: in a performance penalty".
        self.verify_simple = verify_simple
        self.stats = InvocationStats()
        #: When set, only these cohort ranks participate in collective
        #: calls (SCIRun2's sub-setting mechanism, §4.2); positions in
        #: the list define the effective caller ranks.
        self._subset = list(_subset) if _subset is not None else None
        #: Communicator over the participants (for pull broadcasts and
        #: simple-arg verification); the full cohort when no subset.
        self._pcomm = (_participation_comm if _participation_comm
                       is not None else local_comm)

    # -- helpers ------------------------------------------------------------

    @property
    def m(self) -> int:
        return (len(self._subset) if self._subset is not None
                else self.local_comm.size)

    @property
    def n(self) -> int:
        return self.inter.remote_size

    @property
    def caller_rank(self) -> int | None:
        """This rank's effective position among the participating
        callers (None when subset out)."""
        if self._subset is None:
            return self.local_comm.rank
        try:
            return self._subset.index(self.local_comm.rank)
        except ValueError:
            return None

    # -- SCIRun2 sub-setting (§4.2) --------------------------------------------

    def engage_subset(self, ranks: list[int]) -> "CallerEndpoint":
        """"If the needs of a component change at run-time and the
        choice of processes participating in a call needs to be
        modified, then a sub-setting mechanism is engaged."

        Collective over the *full* cohort.  Announces the new
        participant set to the callee cohort (which must call
        :meth:`CalleeEndpoint.accept_subset`) and returns a new endpoint
        on which only ``ranks`` make collective calls.  Ranks outside
        the subset receive the endpoint too, but their :meth:`invoke`
        is a no-op returning None.
        """
        ranks = sorted({int(r) for r in ranks})
        if not ranks or ranks[0] < 0 or ranks[-1] >= self.local_comm.size:
            raise PRMIError(f"invalid subset {ranks} for cohort of "
                            f"{self.local_comm.size}")
        self.stats.subset_engagements += 1
        if self.local_comm.rank == 0:
            # One inter-job message: callee rank 0 relays the
            # announcement down a binomial tree over its own cohort
            # (N-1 local hops in log N rounds instead of N sequential
            # inter sends from here).  The ack comes back only after
            # every callee rank has installed the new caller map, so no
            # post-subset invocation — released by the barrier below —
            # can reach a callee still holding the old map (the
            # event-driven serve loop would otherwise gather fragments
            # under stale merge ownership).
            self.inter.send(("subset", ranks), dest=0, tag=SUBSET_TAG)
            kind, acked = self.inter.recv(source=0, tag=SUBSET_TAG)
            if kind != "subset-ack" or list(acked) != ranks:
                raise PRMIError(
                    f"subset handshake mismatch: sent {ranks}, "
                    f"acked {kind!r} {acked!r}")
        pcomm = self.local_comm.create_subcomm(ranks)
        self.local_comm.barrier()
        return CallerEndpoint(self.local_comm, self.inter, self.port_type,
                              verify_simple=self.verify_simple,
                              _subset=ranks, _participation_comm=pcomm)

    def _split_args(self, spec: MethodSpec, kwargs: dict) -> tuple[dict, dict]:
        declared = {p.name for p in spec.in_params}
        if set(kwargs) != declared:
            raise PRMIError(
                f"method {spec.name!r} expects arguments {sorted(declared)}, "
                f"got {sorted(kwargs)}")
        simple, parallel = {}, {}
        for p in spec.in_params:
            value = kwargs[p.name]
            if p.kind == "parallel":
                if not isinstance(value, ParallelArg):
                    raise PRMIError(
                        f"argument {p.name!r} is declared parallel; wrap it "
                        f"in ParallelArg")
                parallel[p.name] = value
            else:
                if isinstance(value, ParallelArg):
                    raise PRMIError(
                        f"argument {p.name!r} is declared simple but got a "
                        f"ParallelArg")
                simple[p.name] = value
        return simple, parallel

    def _check_simple_consistency(self, simple: dict) -> None:
        self.stats.simple_checks += 1
        gathered = self._pcomm.allgather(simple)
        for other in gathered:
            if not _args_equal(other, simple):
                raise SimpleArgumentMismatch(
                    f"simple arguments differ across callers: "
                    f"{other!r} vs {simple!r}")

    # -- collective invocation ------------------------------------------------

    def invoke(self, method: str, **kwargs: Any) -> Any:
        """Collective call: every caller rank must invoke this together.

        Returns the callee's return value (every caller gets one);
        one-way methods return ``None`` immediately.
        """
        sent = self._invoke_send(method, kwargs)
        if sent is None:
            return None
        spec, me = sent
        if spec.oneway:
            return None
        return self.inter.recv(source=me % self.n, tag=RETURN_TAG)

    def _invoke_send(self, method: str,
                     kwargs: dict) -> tuple[MethodSpec, int] | None:
        """The send half of :meth:`invoke`: ship the invocation
        fragments and serve the callee's pulls, but do **not** receive
        the return value.  Returns ``(spec, effective caller rank)``, or
        ``None`` when this rank is subset out.  The pipelined path
        (:class:`repro.prmi.serving.InvocationPipeline`) defers only the
        return receive — argument pulls stay synchronous, so parallel
        arguments may be reused or freed as soon as this returns.
        """
        spec = self.port_type.method(method)
        if spec.invocation != "collective":
            raise PRMIError(
                f"method {method!r} is declared independent; use "
                f"invoke_independent")
        me = self.caller_rank
        if me is None:
            # Subset out: this cohort rank sits the call out entirely.
            return None
        simple, parallel = self._split_args(spec, kwargs)
        if self.verify_simple and simple:
            self._check_simple_consistency(simple)

        self.stats.calls += 1
        pull_root = (self._subset[0] if self._subset is not None else 0)
        parallel_meta = {name: arg.descriptor
                         for name, arg in parallel.items()}
        my_callees = [nn for nn in range(self.n) if nn % self.m == me] \
            if self.n >= self.m else [me % self.n]
        for callee in my_callees:
            self.inter.send((method, simple, parallel_meta, pull_root),
                            dest=callee, tag=INVOKE_TAG)
        self.stats.ghost_invocations += max(0, len(my_callees) - 1)

        # Serve the callee's pulls, one per parallel in-param, in
        # declared order.
        for p in spec.in_params:
            if p.kind != "parallel":
                continue
            if me == 0:
                layout = self.inter.recv(source=0, tag=PULL_TAG)
            else:
                layout = None
            layout = self._pcomm.bcast(layout, root=0)
            arg = parallel[p.name]
            sched = build_region_schedule(arg.descriptor, layout)
            execute_inter(sched, self.inter, "src", arg.darray,
                          tag=DATA_TAG, rank=me)

        return spec, me

    # -- independent invocation -------------------------------------------------

    def invoke_independent(self, method: str, callee_rank: int,
                           **kwargs: Any) -> Any:
        """One-to-one non-collective invocation (Damevski's second kind)."""
        spec = self.port_type.method(method)
        if spec.invocation != "independent":
            raise PRMIError(
                f"method {method!r} is declared collective; use invoke")
        if spec.parallel_params:
            raise PRMIError(
                "independent invocations cannot carry parallel arguments")
        declared = {p.name for p in spec.in_params}
        if set(kwargs) != declared:
            raise PRMIError(
                f"method {method!r} expects arguments {sorted(declared)}, "
                f"got {sorted(kwargs)}")
        self.stats.calls += 1
        self.inter.send((method, kwargs), dest=callee_rank, tag=IND_TAG)
        if spec.oneway:
            return None
        return self.inter.recv(source=callee_rank, tag=IND_RETURN_TAG)


class InvocationContext:
    """Handed to callee implementations that take lazy parallel args."""

    def __init__(self, callee: "CalleeEndpoint", spec: MethodSpec):
        self._callee = callee
        self._spec = spec
        self._order = [p.name for p in spec.in_params if p.kind == "parallel"]
        self._next = 0

    def expect_next(self, name: str) -> None:
        if self._next >= len(self._order) or self._order[self._next] != name:
            raise PRMIError(
                f"parallel arguments must be materialized in declared "
                f"order {self._order}; got {name!r} at position {self._next}")
        self._next += 1

    @property
    def all_materialized(self) -> bool:
        return self._next == len(self._order)


class CalleeEndpoint:
    """The provides side of a parallel remote port."""

    def __init__(self, local_comm: Communicator, inter: Intercommunicator,
                 port_type: PortType, impl: Any,
                 *, verify_simple: bool = False):
        self.local_comm = local_comm
        self.inter = inter
        self.port_type = port_type
        self.impl = impl
        self.verify_simple = verify_simple
        self.stats = InvocationStats()
        #: Pre-registered layouts: (method, param) -> descriptor
        #: (the paper's first strategy: "specify the layout using a
        #: special framework service before the call is received").
        self._layouts: dict[tuple[str, str], DistArrayDescriptor] = {}
        #: Effective caller rank -> actual remote rank; identity until a
        #: subset is engaged (§4.2 sub-setting).
        self._caller_map: list[int] | None = None
        #: Pull announcements go to this remote rank (the effective
        #: rank-0 caller); updated per invocation.
        self._pull_root = 0

    @property
    def n(self) -> int:
        return self.local_comm.size

    @property
    def m(self) -> int:
        return (len(self._caller_map) if self._caller_map is not None
                else self.inter.remote_size)

    def _actual_caller(self, effective: int) -> int:
        if self._caller_map is None:
            return effective
        return self._caller_map[effective]

    def accept_subset(self) -> list[int]:
        """Complete the caller side's :meth:`CallerEndpoint.engage_subset`.

        Every callee rank must call this; returns the new participant
        list (actual caller cohort ranks).  Only rank 0 hears from the
        caller job — the announcement fans out over a binomial tree on
        the local communicator (tag :data:`SUBSET_TAG` in both hops).
        """
        me = self.local_comm.rank
        if me == 0:
            announcement = self.inter.recv(source=0, tag=SUBSET_TAG)
        else:
            parent = me - (me & -me)
            announcement = self.local_comm.recv(parent, SUBSET_TAG)
        return self._install_subset(announcement)

    def _install_subset(self, announcement: Any) -> list[int]:
        """Relay a subset announcement to this rank's tree children,
        adopt the new caller map, and join the install barrier (rank 0
        then acks the caller side).  Shared with the serve loop, which
        receives the announcement event-driven rather than blocking."""
        kind, ranks = announcement
        if kind != "subset":  # pragma: no cover - protocol guard
            raise PRMIError(f"expected subset announcement, got {kind!r}")
        me = self.local_comm.rank
        for child in self.local_comm._tree_children(me, self.local_comm.size):
            self.local_comm.send(announcement, child, SUBSET_TAG)
        self._caller_map = list(ranks)
        self.stats.subset_engagements += 1
        # Every rank holds the new map before the ack releases the
        # callers' post-subset traffic.
        self.local_comm.barrier()
        if me == 0:
            self.inter.send(("subset-ack", list(ranks)), dest=0,
                            tag=SUBSET_TAG)
        return self._caller_map

    def set_param_layout(self, method: str, param: str,
                         layout: DistArrayDescriptor) -> None:
        """Register the desired layout of a parallel parameter ahead of
        invocation time."""
        spec = self.port_type.method(method)
        if param not in {p.name for p in spec.parallel_params}:
            raise PRMIError(
                f"method {method!r} has no parallel parameter {param!r}")
        self._layouts[(method, param)] = layout

    # -- data pull --------------------------------------------------------------

    def _pull(self, src_descriptor: DistArrayDescriptor,
              layout: DistArrayDescriptor) -> DistributedArray:
        """Collective over the callee cohort: announce ``layout`` to the
        callers and receive the redistributed data."""
        if self.local_comm.rank == 0:
            self.inter.send(layout, dest=self._pull_root, tag=PULL_TAG)
        dst = DistributedArray.allocate(layout, self.local_comm.rank)
        sched = build_region_schedule(src_descriptor, layout)
        execute_inter(sched, self.inter, "dst", dst, tag=DATA_TAG,
                      peer_map=self._caller_map)
        return dst

    # -- collective servicing ------------------------------------------------------

    def _expected_callers(self) -> list[int]:
        """Caller ranks whose invocation fragments this rank merges.

        Participation is static (the SCIRun2/Damevski model), so the
        sources are known a priori; receiving from them specifically —
        rather than ANY_SOURCE — keeps per-source FIFO pairing intact
        when a fast caller's next call overtakes a slow caller's
        current one (e.g. after a one-way method).
        """
        me = self.local_comm.rank
        if self.n >= self.m:
            effective = [me % self.m]
        else:
            effective = [mm for mm in range(self.m) if mm % self.n == me]
        return [self._actual_caller(mm) for mm in effective]

    def serve_one(self) -> str:
        """Service exactly one collective invocation.

        Every callee rank must call this together.  Returns the method
        name serviced (useful for serve loops and tests).
        """
        callers = self._expected_callers()
        invocations = [self.inter.recv(source=mm, tag=INVOKE_TAG)
                       for mm in callers]
        return self._dispatch_collective(invocations)

    def _dispatch_collective(self, invocations: list[Any]) -> str:
        """Merge, execute, and answer already-received invocation
        fragments (one per expected caller, in
        :meth:`_expected_callers` order).  Split from :meth:`serve_one`
        so the event-driven serve loop can receive the fragments through
        ``wait_any`` and dispatch here."""
        me = self.local_comm.rank
        expected = len(invocations)
        method, simple, parallel_meta, pull_root = invocations[0]
        self._pull_root = pull_root
        for other_method, other_simple, _, _ in invocations[1:]:
            if other_method != method:
                raise ParticipationError(
                    f"callee rank {me} received merged invocations of "
                    f"different methods: {method!r} vs {other_method!r}")
            if self.verify_simple and not _args_equal(other_simple, simple):
                raise SimpleArgumentMismatch(
                    f"merged invocations disagree on simple args: "
                    f"{simple!r} vs {other_simple!r}")
        self.stats.calls += 1
        self.stats.merged_invocations += expected - 1
        spec = self.port_type.method(method)

        ctx = InvocationContext(self, spec)
        call_kwargs: dict[str, Any] = dict(simple)
        for p in spec.in_params:
            if p.kind != "parallel":
                continue
            src_desc = parallel_meta[p.name]
            registered = self._layouts.get((method, p.name))
            if registered is not None:
                # Strategy 1: layout known up front; pull eagerly.
                ctx.expect_next(p.name)
                call_kwargs[p.name] = self._pull(src_desc, registered)
            else:
                # Strategy 2: hand the method a reference; the transfer
                # happens when it specifies the layout.
                def make_pull(name=p.name, src=src_desc):
                    def pull(layout: DistArrayDescriptor) -> DistributedArray:
                        ctx.expect_next(name)
                        return self._pull(src, layout)
                    return pull
                call_kwargs[p.name] = LazyParallelArg(p.name, make_pull())

        result = getattr(self.impl, method)(**call_kwargs)
        result = _package_result(spec, result)

        if not ctx.all_materialized:
            raise PRMIError(
                f"method {method!r} returned without materializing every "
                f"parallel argument; the callers are still waiting to send")

        if not spec.oneway:
            return_to = [mm for mm in range(self.m) if mm % self.n == me]
            for caller in return_to:
                self.inter.send(result, dest=self._actual_caller(caller),
                                tag=RETURN_TAG)
            self.stats.ghost_returns += max(0, len(return_to) - 1)
        return method

    # -- independent servicing -------------------------------------------------------

    def serve_independent(self) -> str:
        """Service one independent (one-to-one) invocation on this rank."""
        (method, kwargs), status = self.inter.recv(
            tag=IND_TAG, return_status=True)
        return self._dispatch_independent(method, kwargs, status.source)

    def execute_local(self, method: str, kwargs: dict) -> tuple[MethodSpec, Any]:
        """Run one simple-argument method body on this rank and return
        ``(spec, packaged result)`` without touching the wire — the
        execution core shared by :meth:`serve_independent` and the batch
        frame path (whose replies coalesce into one frame)."""
        spec = self.port_type.method(method)
        if spec.parallel_params:
            raise PRMIError(
                f"method {method!r} declares parallel parameters; framed "
                f"and independent requests carry simple arguments only")
        self.stats.calls += 1
        result = _package_result(spec, getattr(self.impl, method)(**kwargs))
        return spec, result

    def _dispatch_independent(self, method: str, kwargs: dict,
                              source: int) -> str:
        """Execute an already-received independent request from remote
        rank ``source`` and send its reply (split from
        :meth:`serve_independent` for the event-driven serve loop)."""
        spec, result = self.execute_local(method, kwargs)
        if not spec.oneway:
            self.inter.send(result, dest=source, tag=IND_RETURN_TAG)
        return method
