"""Parallel Remote Method Invocation (paper §2.4, §4.2).

"Supporting PRMI is a problem unique to the CCA.  Commercial component
systems support only serial RMI ..."  This package implements the
SCIRun2-flavoured PRMI model:

* **collective** invocations: all M caller ranks call together, all N
  callee ranks service together, with *ghost invocations and return
  values* bridging M ≠ N (§4.2),
* **independent** invocations: one caller rank to one callee rank,
* **one-way** methods: the caller continues immediately, no return
  value (§2.4, adopted from CORBA),
* **simple** arguments (same value on every caller, optionally
  verified) and **parallel** arguments (distributed arrays pulled
  across with an M×N schedule, with both callee-layout strategies the
  paper describes: pre-registered layout and delayed transfer).

The DCA variant (subset participation via communicators, barrier-before-
delivery, alltoall-style parallel data) lives in :mod:`repro.dca`.

The high-throughput serving tier (:mod:`repro.prmi.serving`) layers an
event-driven serve loop, adaptive invocation batching
(:mod:`repro.prmi.frames`), pipelined futures, backpressure, and
per-method transmission policies (:mod:`repro.prmi.policy`) on top of
the lockstep endpoints.
"""

from repro.prmi.args import LazyParallelArg, ParallelArg
from repro.prmi.endpoint import CalleeEndpoint, CallerEndpoint, InvocationStats
from repro.prmi.frames import FrameError, decode_frame, encode_frame
from repro.prmi.policy import (
    Batched,
    CachedRead,
    OneWay,
    PolicyTable,
    Sync,
    TransmissionPolicy,
)
from repro.prmi.serving import (
    InvocationFuture,
    InvocationPipeline,
    ServerLoop,
)

__all__ = [
    "ParallelArg",
    "LazyParallelArg",
    "CallerEndpoint",
    "CalleeEndpoint",
    "InvocationStats",
    "encode_frame",
    "decode_frame",
    "FrameError",
    "TransmissionPolicy",
    "Sync",
    "OneWay",
    "Batched",
    "CachedRead",
    "PolicyTable",
    "ServerLoop",
    "InvocationPipeline",
    "InvocationFuture",
]
