"""PRMI argument containers.

A :class:`ParallelArg` marks a caller-side argument as decomposed data
(the SCIRun2 SIDL distributed-array parameter type).  On the callee
side, a parallel parameter arrives either as a ready
:class:`~repro.dad.DistributedArray` (when the callee pre-registered its
layout — the paper's first strategy) or as a :class:`LazyParallelArg`
reference whose transfer is "delay[ed] ... until the provides side has
specified its layout" (the second strategy).
"""

from __future__ import annotations

from typing import Callable

from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.errors import PRMIError


class ParallelArg:
    """Caller-side wrapper: this argument is a distributed array."""

    def __init__(self, darray: DistributedArray):
        if not isinstance(darray, DistributedArray):
            raise PRMIError(
                f"ParallelArg needs a DistributedArray, got "
                f"{type(darray).__name__}")
        self.darray = darray

    @property
    def descriptor(self) -> DistArrayDescriptor:
        return self.darray.descriptor


class LazyParallelArg:
    """Callee-side reference to a not-yet-transferred parallel argument.

    Calling :meth:`materialize` with the desired layout triggers the
    actual M×N pull; it is collective over the callee cohort and may be
    called at most once.
    """

    def __init__(self, name: str,
                 pull: Callable[[DistArrayDescriptor], DistributedArray]):
        self.name = name
        self._pull = pull
        self._result: DistributedArray | None = None

    @property
    def materialized(self) -> bool:
        return self._result is not None

    def materialize(self, layout: DistArrayDescriptor) -> DistributedArray:
        """Pull the data into ``layout``; collective over the callee."""
        if self._result is not None:
            raise PRMIError(
                f"parallel argument {self.name!r} already materialized")
        self._result = self._pull(layout)
        return self._result

    @property
    def value(self) -> DistributedArray:
        if self._result is None:
            raise PRMIError(
                f"parallel argument {self.name!r} not yet materialized")
        return self._result
