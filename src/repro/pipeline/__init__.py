"""Transformation pipelines — the paper's §6 future work, implemented.

"Beyond parallel data exchange or redistribution capabilities, there is
also the need for concatenating component 'filters', e.g. for spatial
and temporal interpolation or unit conversions" (§1), and "to utilize
the resulting sequence of data transformations and data redistributions,
a pipeline of components can be assembled.  An important pragmatic issue
... is how efficiently redistribution functions compose with one
another.  Techniques must be explored to operate on data in place and
avoid unnecessary data copies.  Super-component solutions could also be
explored for some common cases by combining several successive
redistribution and translation components into a single optimized
component" (§6).

This package provides exactly that:

* :mod:`repro.pipeline.filters` — elementwise translation filters (unit
  conversion, clamping, arbitrary functions) and temporal blending,
* :class:`Pipeline` — an ordered chain of filter and redistribution
  stages with a naive stage-by-stage executor, and
* :meth:`Pipeline.fuse` — the super-component optimizer: adjacent affine
  filters compose in closed form, elementwise filters commute across
  redistributions, and consecutive redistributions collapse into a
  single schedule, so a fused pipeline moves the data at most once and
  filters it in place.
"""

from repro.pipeline.filters import (
    AffineFilter,
    ClampFilter,
    Filter,
    FunctionFilter,
    TemporalBlendFilter,
    UnitConversion,
)
from repro.pipeline.pipeline import (
    FilterStage,
    Pipeline,
    PipelineMetrics,
    RedistributeStage,
)

__all__ = [
    "Filter",
    "AffineFilter",
    "UnitConversion",
    "ClampFilter",
    "FunctionFilter",
    "TemporalBlendFilter",
    "Pipeline",
    "FilterStage",
    "RedistributeStage",
    "PipelineMetrics",
]
