"""Pipelines of redistribution and translation stages, with fusion.

The naive executor runs each stage as its own component would: every
redistribution moves the whole field, every filter allocates a fresh
output array.  :meth:`Pipeline.fuse` builds the §6 "super-component":

* consecutive redistributions collapse to one schedule (A→B→C ≡ A→C for
  lossless redistribution),
* elementwise filters commute across redistributions, so they all slide
  to the end and run **in place** on the final decomposition,
* adjacent filters with a closed-form composition (affine ∘ affine)
  merge into a single filter.

The metrics object counts schedules executed, elements moved, filter
passes and arrays allocated, so the composition-efficiency question the
paper raises is directly measurable (benchmark
``bench_pipeline_fusion``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from repro.errors import ReproError, ScheduleError
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.pipeline.filters import Filter
from repro.schedule.builder import build_region_schedule
from repro.schedule.executor import execute_intra
from repro.simmpi.communicator import Communicator


@dataclass(frozen=True)
class FilterStage:
    """Apply an elementwise filter to the field."""

    filter: Filter


@dataclass(frozen=True)
class RedistributeStage:
    """Move the field into a new decomposition."""

    descriptor: DistArrayDescriptor


Stage = Union[FilterStage, RedistributeStage]


@dataclass
class PipelineMetrics:
    """Work accounting for one pipeline execution."""

    schedules_executed: int = 0
    elements_moved: int = 0
    filter_passes: int = 0
    arrays_allocated: int = 0


class Pipeline:
    """An ordered chain of redistribution and filter stages."""

    def __init__(self, src_descriptor: DistArrayDescriptor,
                 stages: Sequence[Stage]):
        self.src_descriptor = src_descriptor
        self.stages = list(stages)
        shape = src_descriptor.shape
        for stage in self.stages:
            if isinstance(stage, RedistributeStage):
                if stage.descriptor.shape != shape:
                    raise ScheduleError(
                        f"redistribution stage shape "
                        f"{stage.descriptor.shape} != field shape {shape}")
            elif not isinstance(stage, FilterStage):
                raise ReproError(f"unknown stage kind: {stage!r}")
        # Schedules are precomputed per redistribution stage (reusable
        # across executions, §2.3).
        self._schedules = []
        current = src_descriptor
        for stage in self.stages:
            if isinstance(stage, RedistributeStage):
                self._schedules.append(
                    build_region_schedule(current, stage.descriptor))
                current = stage.descriptor
            else:
                self._schedules.append(None)
        self.output_descriptor = current

    @property
    def max_nranks(self) -> int:
        n = self.src_descriptor.nranks
        for stage in self.stages:
            if isinstance(stage, RedistributeStage):
                n = max(n, stage.descriptor.nranks)
        return n

    # -- execution ----------------------------------------------------------

    def run(self, comm: Communicator,
            darray: DistributedArray | None,
            metrics: PipelineMetrics | None = None
            ) -> DistributedArray | None:
        """Execute all stages; collective over ``comm``.

        ``darray`` is this rank's piece of the input (None when the rank
        is outside the source decomposition).  Returns this rank's piece
        of the output (None outside the output decomposition).
        """
        if comm.size < self.max_nranks:
            raise ScheduleError(
                f"pipeline needs {self.max_nranks} ranks, communicator "
                f"has {comm.size}")
        metrics = metrics if metrics is not None else PipelineMetrics()
        current_desc = self.src_descriptor
        current = darray
        for stage, sched in zip(self.stages, self._schedules):
            if isinstance(stage, RedistributeStage):
                dst_desc = stage.descriptor
                dst = (DistributedArray.allocate(dst_desc, comm.rank)
                       if comm.rank < dst_desc.nranks else None)
                if dst is not None:
                    metrics.arrays_allocated += 1
                execute_intra(sched, comm, src_array=current,
                              dst_array=dst,
                              src_ranks=range(current_desc.nranks),
                              dst_ranks=range(dst_desc.nranks))
                metrics.schedules_executed += 1
                metrics.elements_moved += sched.element_count
                current, current_desc = dst, dst_desc
            else:
                if current is not None:
                    # Naive stage boundary: a fresh output array, the
                    # way independent filter components would behave.
                    out = DistributedArray.allocate(current_desc, comm.rank)
                    metrics.arrays_allocated += 1
                    for region, arr in current.iter_patches():
                        stage.filter.apply(
                            arr, out=out.local_view(region))
                    current = out
                metrics.filter_passes += 1
        return current

    # -- the super-component -------------------------------------------------

    def fuse(self) -> "FusedPipeline":
        """Build the optimized single-component equivalent."""
        filters: list[Filter] = []
        for stage in self.stages:
            if isinstance(stage, FilterStage):
                if filters:
                    merged = filters[-1].compose(stage.filter)
                    if merged is not None:
                        filters[-1] = merged
                        continue
                filters.append(stage.filter)
            # Redistributions contribute only their final target: they
            # are lossless, so only the last one matters, and the
            # elementwise filters commute across them.
        return FusedPipeline(self.src_descriptor, self.output_descriptor,
                             filters)


class FusedPipeline:
    """The §6 super-component: at most one redistribution, then the
    composed filter chain applied in place."""

    def __init__(self, src_descriptor: DistArrayDescriptor,
                 output_descriptor: DistArrayDescriptor,
                 filters: Sequence[Filter]):
        self.src_descriptor = src_descriptor
        self.output_descriptor = output_descriptor
        self.filters = list(filters)
        self._identity = (src_descriptor.cache_key()
                          == output_descriptor.cache_key())
        self._schedule = None if self._identity else \
            build_region_schedule(src_descriptor, output_descriptor)

    @property
    def max_nranks(self) -> int:
        return max(self.src_descriptor.nranks,
                   self.output_descriptor.nranks)

    def run(self, comm: Communicator,
            darray: DistributedArray | None,
            metrics: PipelineMetrics | None = None
            ) -> DistributedArray | None:
        metrics = metrics if metrics is not None else PipelineMetrics()
        if self._identity:
            current = darray
        else:
            dst = (DistributedArray.allocate(
                self.output_descriptor, comm.rank)
                if comm.rank < self.output_descriptor.nranks else None)
            if dst is not None:
                metrics.arrays_allocated += 1
            execute_intra(self._schedule, comm, src_array=darray,
                          dst_array=dst,
                          src_ranks=range(self.src_descriptor.nranks),
                          dst_ranks=range(self.output_descriptor.nranks))
            metrics.schedules_executed += 1
            metrics.elements_moved += self._schedule.element_count
            current = dst
        if current is not None:
            for f in self.filters:
                # In place: no intermediate arrays.
                for _, arr in current.iter_patches():
                    f.apply(arr, out=arr)
        metrics.filter_passes += len(self.filters)
        return current
