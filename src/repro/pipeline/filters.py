"""Translation/conversion filters for coupling pipelines.

Filters are elementwise (each output element depends only on the same
input element), which is what lets the pipeline optimizer commute them
across redistributions.  They operate in place on local patches when
asked — the "operate on data in place and avoid unnecessary data
copies" technique from §6.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.errors import ReproError


class Filter(ABC):
    """An elementwise data transformation."""

    @abstractmethod
    def apply(self, values: np.ndarray, *, out: np.ndarray | None = None
              ) -> np.ndarray:
        """Transform ``values``; write into ``out`` (may alias) if given."""

    def compose(self, after: "Filter") -> "Filter | None":
        """A single filter equivalent to self-then-``after``, when a
        closed form exists; None otherwise."""
        return None


class AffineFilter(Filter):
    """``y = scale * x + offset`` — the unit-conversion workhorse."""

    def __init__(self, scale: float = 1.0, offset: float = 0.0):
        self.scale = float(scale)
        self.offset = float(offset)

    def apply(self, values, *, out=None):
        if out is None:
            return values * self.scale + self.offset
        np.multiply(values, self.scale, out=out)
        out += self.offset
        return out

    def compose(self, after):
        if isinstance(after, AffineFilter):
            # after(self(x)) = a2*(a1*x + b1) + b2
            return AffineFilter(after.scale * self.scale,
                                after.scale * self.offset + after.offset)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AffineFilter({self.scale} * x + {self.offset})"


class UnitConversion(AffineFilter):
    """Named affine conversions between common unit systems."""

    CONVERSIONS: dict[tuple[str, str], tuple[float, float]] = {
        ("celsius", "kelvin"): (1.0, 273.15),
        ("kelvin", "celsius"): (1.0, -273.15),
        ("celsius", "fahrenheit"): (1.8, 32.0),
        ("fahrenheit", "celsius"): (1.0 / 1.8, -32.0 / 1.8),
        ("m", "cm"): (100.0, 0.0),
        ("cm", "m"): (0.01, 0.0),
        ("pa", "bar"): (1e-5, 0.0),
        ("bar", "pa"): (1e5, 0.0),
    }

    def __init__(self, src_unit: str, dst_unit: str):
        key = (src_unit.lower(), dst_unit.lower())
        if key[0] == key[1]:
            scale, offset = 1.0, 0.0
        elif key in self.CONVERSIONS:
            scale, offset = self.CONVERSIONS[key]
        else:
            raise ReproError(
                f"no unit conversion registered for {key[0]!r} -> "
                f"{key[1]!r}")
        super().__init__(scale, offset)
        self.src_unit, self.dst_unit = key


class ClampFilter(Filter):
    """Clamp values into ``[lo, hi]`` (e.g. physical positivity)."""

    def __init__(self, lo: float | None = None, hi: float | None = None):
        if lo is None and hi is None:
            raise ReproError("ClampFilter needs at least one bound")
        self.lo = lo
        self.hi = hi

    def apply(self, values, *, out=None):
        return np.clip(values, self.lo, self.hi, out=out)


class FunctionFilter(Filter):
    """Arbitrary vectorized elementwise function."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray],
                 name: str = "fn"):
        self.fn = fn
        self.name = name

    def apply(self, values, *, out=None):
        result = self.fn(values)
        if out is not None:
            out[...] = result
            return out
        return result


class TemporalBlendFilter(Filter):
    """Linear interpolation between the previous sample and the current
    one: ``y_t = (1 - w) * x_{t-1} + w * x_t`` — the simplest of the
    paper's "temporal interpolation" filters.

    Stateful: remembers the last input per patch shape.  Use with
    decompositions that give each rank a single patch (plain block
    layouts) so successive calls line up with successive time samples.
    """

    def __init__(self, weight: float = 0.5):
        if not (0.0 <= weight <= 1.0):
            raise ReproError(f"blend weight must be in [0, 1], got {weight}")
        self.weight = float(weight)
        self._previous: dict[tuple, np.ndarray] = {}

    def apply(self, values, *, out=None):
        key = values.shape
        prev = self._previous.get(key, values)
        self._previous[key] = np.array(values, copy=True)
        result = (1.0 - self.weight) * prev + self.weight * values
        if out is not None:
            out[...] = result
            return out
        return result

    def reset(self) -> None:
        self._previous.clear()
