"""repro — CCA M×N parallel data redistribution and PRMI.

A complete Python implementation of the systems described in Bertrand
et al., "Data Redistribution and Remote Method Invocation in Parallel
Component Architectures" (IPPS/IPDPS 2005): the Distributed Array
Descriptor, communication schedules, linearization, the generalized
M×N component, PRMI (SCIRun2 and DCA models), InterComm-style
timestamp coordination, and an MCT-style model coupling toolkit — all
over a simulated MPI runtime (:mod:`repro.simmpi`).

Quickstart::

    import numpy as np
    from repro import (DistArrayDescriptor, DistributedArray,
                       block_template, build_region_schedule,
                       execute_intra, run_spmd)

    shape = (12, 12, 12)
    src = DistArrayDescriptor(block_template(shape, (2, 2, 2)))  # M = 8
    dst = DistArrayDescriptor(block_template(shape, (3, 3, 3)))  # N = 27
    sched = build_region_schedule(src, dst)

    g = np.arange(np.prod(shape), dtype=float).reshape(shape)

    def main(comm):
        sa = (DistributedArray.from_global(src, comm.rank, g)
              if comm.rank < src.nranks else None)
        da = DistributedArray.allocate(dst, comm.rank)
        execute_intra(sched, comm, src_array=sa, dst_array=da,
                      src_ranks=range(src.nranks),
                      dst_ranks=range(dst.nranks))
        return da

    parts = run_spmd(27, main)
    assert (DistributedArray.assemble(parts) == g).all()
"""

from repro.dad import (
    AccessMode,
    Block,
    BlockCyclic,
    CartesianTemplate,
    Collapsed,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
    ExplicitTemplate,
    GeneralizedBlock,
    Implicit,
)
from repro.dad.template import block_template
from repro.schedule import (
    ScheduleCache,
    build_linear_schedule,
    build_region_schedule,
    execute_inter,
    execute_intra,
)
from repro.simmpi import (
    Communicator,
    Intercommunicator,
    NameService,
    SpmdRunner,
    run_coupled,
    run_spmd,
)
from repro.mxn import ConnectionKind, ConnectionSpec, MxNComponent
from repro.linearize import DenseLinearization, GraphLinearization
from repro.prmi import CalleeEndpoint, CallerEndpoint, ParallelArg

__version__ = "1.0.0"

__all__ = [
    # DAD
    "AccessMode",
    "Block",
    "BlockCyclic",
    "CartesianTemplate",
    "Collapsed",
    "Cyclic",
    "DistArrayDescriptor",
    "DistributedArray",
    "ExplicitTemplate",
    "GeneralizedBlock",
    "Implicit",
    "block_template",
    # schedules
    "ScheduleCache",
    "build_region_schedule",
    "build_linear_schedule",
    "execute_intra",
    "execute_inter",
    # runtime
    "Communicator",
    "Intercommunicator",
    "NameService",
    "SpmdRunner",
    "run_spmd",
    "run_coupled",
    # M×N component
    "MxNComponent",
    "ConnectionKind",
    "ConnectionSpec",
    # linearization
    "DenseLinearization",
    "GraphLinearization",
    # PRMI
    "CallerEndpoint",
    "CalleeEndpoint",
    "ParallelArg",
    "__version__",
]
