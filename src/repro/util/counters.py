"""Instrumentation counters.

Every communicator carries a :class:`Counters` instance so benchmarks can
report deterministic *shape* metrics — messages, bytes, barriers — beside
wall-clock time (which on a thread-simulated runtime is only indicative).
"""

from __future__ import annotations

import threading
from collections import defaultdict


class Counters:
    """Thread-safe named integer counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._data[name] += int(amount)

    def gauge_add(self, name: str, delta: int) -> None:
        """Move a *level* gauge by ``delta`` and maintain its high-water
        mark: ``name`` tracks the current level, ``peak_<name>`` the
        maximum level ever observed (both under one lock, so concurrent
        acquire/release races can never record a stale peak).  Resetting
        the counters zeroes both — reset around a measured section, as
        with plain counters."""
        with self._lock:
            level = self._data[name] + int(delta)
            self._data[name] = level
            peak = "peak_" + name
            if level > self._data[peak]:
                self._data[peak] = level

    def get(self, name: str) -> int:
        with self._lock:
            return self._data.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._data)

    def reset(self) -> None:
        with self._lock:
            self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counters({self.snapshot()!r})"


#: Process-wide transport accounting (bytes copied, buffers moved,
#: direct recv-into-destination deliveries, ...).  Lives here rather
#: than in :mod:`repro.simmpi.payload` users' modules to avoid import
#: cycles between the payload, matching and schedule layers; reset it
#: around a measured section to get per-section deltas.
#:
#: Two-sided matching cost (:mod:`repro.simmpi.matching`):
#: ``messages_matched`` counts every envelope consumed by a receiver
#: (queue match, prepost drain, or direct slot completion) and
#: ``rendezvous_waits`` every receive that actually blocked waiting for
#: its sender.  One-sided cost (:mod:`repro.simmpi.rma`): ``rma_puts`` /
#: ``rma_put_bytes`` count remote-window writes, ``rma_fences``
#: completed exposure epochs, and ``rma_epoch_waits`` put-side spins on
#: a not-yet-open epoch.  A persistent channel in RMA mode should show
#: zero matched messages per steady-state step — that delta is the A9
#: benchmark's headline metric.
#:
#: Memory gauges (maintained with :meth:`Counters.gauge_add`, each with
#: a ``peak_``-prefixed high-water twin): ``pool_bytes`` — bytes on
#: loan from :class:`~repro.schedule.bufpool.BufferPool`\ s,
#: ``slot_bytes`` — shared-memory slots held BUSY in a
#: :class:`~repro.simmpi.shm.SegmentPool`, and ``resident_bytes`` —
#: the sum of both plus every envelope queued in a mailbox awaiting its
#: receiver.  ``peak_resident_bytes`` is therefore the process-wide
#: transfer-buffer footprint high-water mark the A10 memory-ceiling
#: benchmark gates on (per process: the threads backend sums all rank
#: threads, the procs backend counts each rank's own process).  A
#: pooled buffer travelling inside a queued envelope is counted by both
#: the pool and the queue until its release fires — a deliberately
#: conservative upper bound.
TRANSPORT_STATS = Counters()
