"""Instrumentation counters.

Every communicator carries a :class:`Counters` instance so benchmarks can
report deterministic *shape* metrics — messages, bytes, barriers — beside
wall-clock time (which on a thread-simulated runtime is only indicative).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import defaultdict


class Counters:
    """Thread-safe named integer counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._data[name] += int(amount)

    def gauge_add(self, name: str, delta: int) -> None:
        """Move a *level* gauge by ``delta`` and maintain its high-water
        mark: ``name`` tracks the current level, ``peak_<name>`` the
        maximum level ever observed (both under one lock, so concurrent
        acquire/release races can never record a stale peak).  Resetting
        the counters zeroes both — reset around a measured section, as
        with plain counters."""
        with self._lock:
            level = self._data[name] + int(delta)
            self._data[name] = level
            peak = "peak_" + name
            if level > self._data[peak]:
                self._data[peak] = level

    def get(self, name: str) -> int:
        with self._lock:
            return self._data.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._data)

    def reset(self) -> None:
        with self._lock:
            self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counters({self.snapshot()!r})"


#: Process-wide transport accounting (bytes copied, buffers moved,
#: direct recv-into-destination deliveries, ...).  Lives here rather
#: than in :mod:`repro.simmpi.payload` users' modules to avoid import
#: cycles between the payload, matching and schedule layers; reset it
#: around a measured section to get per-section deltas.
#:
#: Two-sided matching cost (:mod:`repro.simmpi.matching`):
#: ``messages_matched`` counts every envelope consumed by a receiver
#: (queue match, prepost drain, or direct slot completion) and
#: ``rendezvous_waits`` every receive that actually blocked waiting for
#: its sender.  One-sided cost (:mod:`repro.simmpi.rma`): ``rma_puts`` /
#: ``rma_put_bytes`` count remote-window writes, ``rma_fences``
#: completed exposure epochs, and ``rma_epoch_waits`` put-side spins on
#: a not-yet-open epoch.  A persistent channel in RMA mode should show
#: zero matched messages per steady-state step — that delta is the A9
#: benchmark's headline metric.
#:
#: Memory gauges (maintained with :meth:`Counters.gauge_add`, each with
#: a ``peak_``-prefixed high-water twin): ``pool_bytes`` — bytes on
#: loan from :class:`~repro.schedule.bufpool.BufferPool`\ s,
#: ``slot_bytes`` — shared-memory slots held BUSY in a
#: :class:`~repro.simmpi.shm.SegmentPool`, and ``resident_bytes`` —
#: the sum of both plus every envelope queued in a mailbox awaiting its
#: receiver.  ``peak_resident_bytes`` is therefore the process-wide
#: transfer-buffer footprint high-water mark the A10 memory-ceiling
#: benchmark gates on (per process: the threads backend sums all rank
#: threads, the procs backend counts each rank's own process).  A
#: pooled buffer travelling inside a queued envelope is counted by both
#: the pool and the queue until its release fires — a deliberately
#: conservative upper bound.
TRANSPORT_STATS = Counters()


class Histogram:
    """Thread-safe log-spaced latency histogram (microsecond domain).

    Buckets grow geometrically from 1 µs to ~17 s (×2 per bucket), which
    keeps recording O(log n) and percentile error under a factor of two
    — plenty for p50/p99 serving-latency floors whose regressions are
    order-of-magnitude events.  ``record`` takes seconds (what
    ``time.perf_counter`` subtraction yields); ``percentile`` returns
    microseconds (the upper edge of the bucket holding the quantile).
    """

    #: Bucket upper edges in microseconds: 1, 2, 4, ... 2**24.
    EDGES = tuple(float(1 << i) for i in range(25))

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets = [0] * (len(self.EDGES) + 1)
        self._count = 0
        self._sum_us = 0.0

    def record(self, seconds: float) -> None:
        us = seconds * 1e6
        idx = bisect_left(self.EDGES, us)
        with self._lock:
            self._buckets[idx] += 1
            self._count += 1
            self._sum_us += us

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def mean_us(self) -> float:
        with self._lock:
            return self._sum_us / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bucket edge (µs) at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            seen = 0
            for i, c in enumerate(self._buckets):
                seen += c
                if seen >= target and c:
                    return (self.EDGES[i] if i < len(self.EDGES)
                            else self.EDGES[-1] * 2)
            return self.EDGES[-1] * 2

    def snapshot(self) -> dict[str, float]:
        return {"count": self.count, "mean_us": self.mean_us(),
                "p50_us": self.percentile(0.50),
                "p99_us": self.percentile(0.99)}

    def reset(self) -> None:
        with self._lock:
            self._buckets = [0] * (len(self.EDGES) + 1)
            self._count = 0
            self._sum_us = 0.0


#: Process-wide PRMI serving accounting (:mod:`repro.prmi.serving`).
#:
#: Counters: ``invocations`` — requests admitted by a pipeline (batched,
#: sync, one-way and pipelined-collective alike), ``frames_sent`` /
#: ``frame_requests`` — coalesced frames and the requests they carry
#: (their ratio is the batch occupancy the A11 benchmark reports),
#: ``frame_bytes`` — encoded frame payload bytes, ``flush_full`` /
#: ``flush_deadline`` / ``flush_forced`` — why each flush fired (batch
#: cap, ``REPRO_BATCH_DELAY_US`` deadline, or an explicit
#: ``flush()``/``result()``), ``pipelined_calls`` — collective
#: invocations whose RETURN wait was deferred to a future,
#: ``cached_read_hits`` — invocations answered from a CachedRead policy
#: without touching the wire, ``overloads`` — admissions refused by
#: backpressure (caller-side credit or the server's bounded queue).
#:
#: Gauge (via :meth:`Counters.gauge_add`): ``inflight`` — submitted-but-
#: unresolved requests across pipelines; ``peak_inflight`` is the queue
#: depth high-water mark the serving benchmark records.
PRMI_STATS = Counters()

#: Caller-observed request latency (submit → resolved), µs buckets.
PRMI_LATENCY = Histogram()

#: Process-wide race-sanitizer accounting (:mod:`repro.simmpi.sanitize`,
#: enabled with ``REPRO_TSAN=1``).  ``sync_ops`` counts vector-clock
#: events at shared-memory synchronization sites (slot acquire /
#: publish / consume / release, window epoch open / commit / fence,
#: SharedState field writes, mailbox envelope handoffs) and ``reports``
#: the :class:`~repro.simmpi.sanitize.RaceReport`\ s raised, with one
#: kind-specific twin each: ``reports_unsynchronized_write``,
#: ``reports_torn_seqlock_read``, ``reports_slot_reuse``.  Every name
#: stays exactly zero while the sanitizer is disabled — the A2 ablation
#: benchmark gates on that (the hooks are a single module-global
#: ``None`` test when off).
RACE_STATS = Counters()

#: Process-wide elastic-redistribution accounting
#: (:mod:`repro.schedule.delta`, :func:`repro.highlevel.reconfigure`).
#:
#: Compilation reuse: ``pairs_reused`` counts :class:`~repro.schedule.
#: indexplan.PairPlan`\ s copied verbatim from a previously compiled
#: schedule during a cache warm start (same owner layout, same wire
#: regions — the plan is a pure function of both, so byte-identical),
#: ``pairs_recompiled`` the pairs a warm start had to compile fresh
#: because the peer set or region list changed.  A resize that shows
#: ``pairs_reused > 0`` proves the delta compiler skipped work a full
#: rebuild would repeat — the A12 benchmark gates on it.
#:
#: Data movement: ``migrated_bytes`` — bytes whose owner actually
#: changed and therefore crossed the wire during a ``reconfigure``,
#: ``kept_bytes`` — bytes that stayed on their rank and were repacked
#: locally (or left in place on identity ranks), ``identity_ranks`` —
#: ranks whose ownership was completely unchanged and skipped even the
#: local repack.  ``resizes`` counts completed live resizes and
#: ``resize_wall_us`` accumulates their rank-0 wall time; reset around
#: a measured section for per-section deltas, as with TRANSPORT_STATS.
REDIST_STATS = Counters()
