"""N-dimensional half-open rectangular regions and region lists.

A :class:`Region` is the basic unit of data description throughout the
library: distributed-array patches, schedule transfer units, and InterComm
block descriptors are all regions.  Regions use *half-open* bounds
``[lo, hi)`` per axis, matching Python slicing, so conversion to and from
NumPy views is exact and copy-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DistributionError


@dataclass(frozen=True, slots=True)
class Region:
    """A half-open N-dimensional rectangle ``[lo[d], hi[d])`` per axis.

    Immutable and hashable so regions can key schedule caches.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise DistributionError(
                f"Region lo/hi rank mismatch: {self.lo} vs {self.hi}"
            )
        for d, (a, b) in enumerate(zip(self.lo, self.hi)):
            if b < a:
                raise DistributionError(
                    f"Region axis {d} has hi < lo: [{a}, {b})"
                )

    # -- constructors ---------------------------------------------------

    @staticmethod
    def from_shape(shape: Sequence[int]) -> "Region":
        """The region covering a whole array of the given shape."""
        return Region(tuple(0 for _ in shape), tuple(int(s) for s in shape))

    @staticmethod
    def from_slices(slices: Sequence[slice], shape: Sequence[int]) -> "Region":
        """Build a region from plain (non-strided) slices over ``shape``."""
        lo, hi = [], []
        for sl, n in zip(slices, shape):
            start, stop, step = sl.indices(int(n))
            if step != 1:
                raise DistributionError("Region slices must be contiguous (step 1)")
            lo.append(start)
            hi.append(stop)
        return Region(tuple(lo), tuple(hi))

    # -- basic properties -----------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(b - a for a, b in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        v = 1
        for a, b in zip(self.lo, self.hi):
            v *= b - a
        return v

    @property
    def empty(self) -> bool:
        return any(b <= a for a, b in zip(self.lo, self.hi))

    # -- algebra ----------------------------------------------------------

    def intersect(self, other: "Region") -> "Region | None":
        """Intersection with ``other``, or ``None`` when disjoint/empty."""
        if self.ndim != other.ndim:
            raise DistributionError(
                f"cannot intersect rank-{self.ndim} with rank-{other.ndim} region"
            )
        lo = tuple(max(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(min(b, d) for b, d in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Region(lo, hi)

    def contains(self, other: "Region") -> bool:
        """True when ``other`` lies fully inside this region."""
        if other.empty:
            return True
        return all(a <= c and d <= b for a, b, c, d in
                   zip(self.lo, self.hi, other.lo, other.hi))

    def contains_point(self, point: Sequence[int]) -> bool:
        return all(a <= p < b for a, b, p in zip(self.lo, self.hi, point))

    def shift(self, offset: Sequence[int]) -> "Region":
        """Translate the region by ``offset`` per axis."""
        return Region(
            tuple(a + o for a, o in zip(self.lo, offset)),
            tuple(b + o for b, o in zip(self.hi, offset)),
        )

    def relative_to(self, origin: "Region") -> "Region":
        """Express this region in the local coordinates of ``origin``.

        Used to turn a global-coordinate transfer region into an index
        into a rank's local patch storage.
        """
        if not origin.contains(self):
            raise DistributionError(f"{self} is not inside {origin}")
        return self.shift(tuple(-a for a in origin.lo))

    def subtract(self, other: "Region") -> list["Region"]:
        """This region minus ``other``, as a list of disjoint regions.

        Standard axis-sweep decomposition: peel off slabs below and above
        the overlap on each axis in turn.  Returns ``[self]`` when there
        is no overlap.
        """
        inter = self.intersect(other)
        if inter is None:
            return [] if self.empty else [self]
        pieces: list[Region] = []
        lo = list(self.lo)
        hi = list(self.hi)
        for d in range(self.ndim):
            if lo[d] < inter.lo[d]:
                piece_lo = tuple(lo)
                piece_hi = tuple(hi[:d] + [inter.lo[d]] + hi[d + 1:])
                pieces.append(Region(piece_lo, piece_hi))
                lo[d] = inter.lo[d]
            if inter.hi[d] < hi[d]:
                piece_lo = tuple(lo[:d] + [inter.hi[d]] + lo[d + 1:])
                piece_hi = tuple(hi)
                pieces.append(Region(piece_lo, piece_hi))
                hi[d] = inter.hi[d]
        return [p for p in pieces if not p.empty]

    # -- NumPy interop ----------------------------------------------------

    def to_slices(self) -> tuple[slice, ...]:
        """Slices selecting this region out of a global-coordinate array."""
        return tuple(slice(a, b) for a, b in zip(self.lo, self.hi))

    def view(self, array: np.ndarray, origin: "Region | None" = None) -> np.ndarray:
        """A view of ``array`` covering this region.

        ``array`` holds the data of ``origin`` (defaults to the whole
        array at global origin 0); the returned view is not a copy.
        """
        if origin is None:
            origin = Region.from_shape(array.shape)
        local = self.relative_to(origin)
        return array[local.to_slices()]

    # -- misc ---------------------------------------------------------------

    def corners(self) -> Iterator[tuple[int, ...]]:
        """Iterate the 2^ndim corner points (hi corners are inclusive-1)."""
        def rec(d: int, acc: list[int]) -> Iterator[tuple[int, ...]]:
            if d == self.ndim:
                yield tuple(acc)
                return
            for val in (self.lo[d], self.hi[d] - 1):
                yield from rec(d + 1, acc + [val])
                if self.hi[d] - 1 == self.lo[d]:
                    break
        if not self.empty:
            yield from rec(0, [])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spans = ", ".join(f"{a}:{b}" for a, b in zip(self.lo, self.hi))
        return f"Region[{spans}]"


def intersect_boxes(a_lo: np.ndarray, a_hi: np.ndarray,
                    b_lo: np.ndarray, b_hi: np.ndarray,
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized pairwise intersection of two batches of boxes.

    All inputs are ``(k, ndim)`` integer arrays of half-open bounds; row
    ``i`` of the ``a`` arrays is intersected with row ``i`` of the ``b``
    arrays.  Returns ``(lo, hi, nonempty)`` where ``nonempty[i]`` is True
    when the intersection has positive volume on every axis.  This is
    the batch core of the sweep-line schedule builder: candidate pairs
    found by the per-axis sweep are clipped in one NumPy pass instead of
    one :meth:`Region.intersect` call each.
    """
    lo = np.maximum(a_lo, b_lo)
    hi = np.minimum(a_hi, b_hi)
    return lo, hi, (hi > lo).all(axis=-1)


class RegionList:
    """An ordered collection of disjoint regions with set-like queries.

    Region lists describe irregular ownership (explicit distributions) and
    schedule send/receive sets.  Disjointness is validated on construction
    because overlapping ownership is always a bug in this domain.
    """

    __slots__ = ("regions",)

    def __init__(self, regions: Iterable[Region] = (), *, validate: bool = True):
        self.regions: list[Region] = [r for r in regions if not r.empty]
        if validate:
            self._check_disjoint()

    def _check_disjoint(self) -> None:
        # Sort-and-sweep along the first axis: a region can only collide
        # with regions whose axis-0 slab it overlaps, so each candidate
        # pair is checked at most once and the all-pairs quadratic cost
        # only survives inside a single overlapping slab.
        if len(self.regions) < 2:
            return
        ordered = sorted(self.regions, key=lambda r: r.lo[0])
        active: list[Region] = []
        for r in ordered:
            lo0 = r.lo[0]
            active = [a for a in active if a.hi[0] > lo0]
            for a in active:
                if a.intersect(r) is not None:
                    raise DistributionError(f"overlapping regions: {a} and {r}")
            active.append(r)

    @property
    def volume(self) -> int:
        return sum(r.volume for r in self.regions)

    def intersect_region(self, other: Region) -> "RegionList":
        """All parts of this list lying inside ``other``."""
        out = []
        for r in self.regions:
            inter = r.intersect(other)
            if inter is not None:
                out.append(inter)
        return RegionList(out, validate=False)

    def intersect(self, other: "RegionList") -> "RegionList":
        out = []
        for r in self.regions:
            for s in other.regions:
                inter = r.intersect(s)
                if inter is not None:
                    out.append(inter)
        return RegionList(out, validate=False)

    def covers(self, region: Region) -> bool:
        """True when the union of this list covers ``region`` exactly."""
        remaining = [region]
        for r in self.regions:
            nxt: list[Region] = []
            for piece in remaining:
                nxt.extend(piece.subtract(r))
            remaining = nxt
            if not remaining:
                return True
        return not remaining

    def contains_point(self, point: Sequence[int]) -> bool:
        return any(r.contains_point(point) for r in self.regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegionList({self.regions!r})"


def tile_check(regions: Iterable[Region], template: Region) -> None:
    """Validate that ``regions`` exactly tile ``template``.

    The paper's *explicit* distribution requires patches that "must not
    overlap and must completely cover the template"; this enforces both,
    raising :class:`DistributionError` otherwise.
    """
    rl = RegionList(regions)  # validates disjointness
    total = sum(r.volume for r in rl)
    if total != template.volume or not rl.covers(template):
        raise DistributionError(
            f"patches do not tile template {template}: "
            f"patch volume {total} vs template volume {template.volume}"
        )
