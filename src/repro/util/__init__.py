"""Shared low-level utilities: region algebra, indexing, instrumentation."""

from repro.util.regions import Region, RegionList
from repro.util.indexing import (
    row_major_offset,
    row_major_coords,
    region_flat_indices,
    shape_volume,
)
from repro.util.counters import Counters

__all__ = [
    "Region",
    "RegionList",
    "Counters",
    "row_major_offset",
    "row_major_coords",
    "region_flat_indices",
    "shape_volume",
]
