"""Flat-index helpers: row-major linearization of N-dim coordinates.

These are the primitives behind the linearization intermediate
representation (Section 2.2.1 of the paper) and behind packing region
data into contiguous message buffers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.regions import Region


def shape_volume(shape: Sequence[int]) -> int:
    """Number of elements in an array of the given shape."""
    v = 1
    for s in shape:
        v *= int(s)
    return v


def row_major_strides(shape: Sequence[int]) -> tuple[int, ...]:
    """Element (not byte) strides of a C-ordered array of ``shape``."""
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * int(shape[d + 1])
    return tuple(strides)


def row_major_offset(coords: Sequence[int], shape: Sequence[int]) -> int:
    """Flat row-major offset of ``coords`` in an array of ``shape``."""
    off = 0
    for c, s in zip(coords, row_major_strides(shape)):
        off += int(c) * s
    return off


def row_major_coords(offset: int, shape: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`row_major_offset`."""
    coords = []
    for s in row_major_strides(shape):
        coords.append(offset // s)
        offset %= s
    return tuple(coords)


def region_flat_indices(region: Region, shape: Sequence[int]) -> np.ndarray:
    """Row-major flat indices of every element of ``region`` within an
    enclosing array of ``shape``, in region-row-major order.

    Vectorized: builds the index array by broadcasting per-axis offsets
    rather than looping over elements.
    """
    strides = row_major_strides(shape)
    idx = np.zeros((), dtype=np.int64)
    for d in range(region.ndim):
        ax = np.arange(region.lo[d], region.hi[d], dtype=np.int64) * strides[d]
        idx = idx[..., None] + ax
    return idx.reshape(-1)
