"""Core linearization machinery: runs, extraction and injection.

The contract every linearization satisfies:

* every element of the structure has exactly one linear position,
* :meth:`Linearization.runs` reports each rank's owned positions as
  maximal half-open intervals,
* :meth:`extract` reads the values of a linear interval out of local
  storage and :meth:`inject` writes them back.

For dense arrays the canonical (row-major) linearization turns a
rectangular patch into one run per contiguous row segment — which is
precisely why a "structureless" linearization carries more descriptor
entries than a compact DAD (experiment E7).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DistributionError, ScheduleError
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.util.indexing import row_major_strides
from repro.util.regions import Region


@dataclass(frozen=True, slots=True)
class Run:
    """A maximal contiguous interval of linear positions owned by a rank."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise DistributionError(f"run hi < lo: [{self.lo}, {self.hi})")

    @property
    def length(self) -> int:
        return self.hi - self.lo

    def intersect(self, other: "Run") -> "Run | None":
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Run(lo, hi) if hi > lo else None


def coalesce_runs(runs: Sequence[Run]) -> list[Run]:
    """Sort and merge adjacent/overlapping runs into maximal intervals."""
    if not runs:
        return []
    ordered = sorted(runs, key=lambda r: r.lo)
    out = [ordered[0]]
    for r in ordered[1:]:
        last = out[-1]
        if r.lo <= last.hi:
            out[-1] = Run(last.lo, max(last.hi, r.hi))
        else:
            out.append(r)
    return out


class Linearization(ABC):
    """Maps a distributed structure's elements onto ``[0, total)``."""

    nranks: int

    @property
    @abstractmethod
    def total(self) -> int:
        """Total number of elements in the linear space."""

    @abstractmethod
    def runs(self, rank: int) -> list[Run]:
        """Owned linear intervals of ``rank``, coalesced and ascending."""

    @abstractmethod
    def extract(self, rank: int, run: Run, storage) -> np.ndarray:
        """Values of ``run`` (which must be owned by ``rank``) as a flat
        array read from ``storage``."""

    @abstractmethod
    def inject(self, rank: int, run: Run, values: np.ndarray, storage) -> None:
        """Write ``values`` into the positions of ``run`` in ``storage``."""

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the linearized values — what empty wire
        buffers must be typed as.  Defaults to float64; linearizations
        with a known storage dtype should override."""
        return np.dtype(np.float64)

    # -- flat-index plan support (optional) -------------------------------

    def flat_storage(self, rank: int, storage) -> np.ndarray | None:
        """The rank's 1-D local buffer that :meth:`run_indices` values
        address, or ``None`` when this linearization has no flat-index
        support (e.g. dict-backed graph storage).  When non-``None``,
        the schedule executors compile gather/scatter index plans and
        move each pair's runs with one vectorized call instead of one
        :meth:`extract`/:meth:`inject` per run."""
        return None

    def run_indices(self, rank: int, run: Run) -> np.ndarray:
        """Flat indices of ``run``'s positions inside ``rank``'s flat
        storage, in linear order.  Only meaningful when
        :meth:`flat_storage` returns a buffer."""
        raise NotImplementedError(
            f"{type(self).__name__} has no flat-index plan support")

    # -- shared -----------------------------------------------------------

    def descriptor_entries(self) -> int:
        """Entries needed to encode all ranks' run lists."""
        return sum(2 * len(self.runs(r)) for r in range(self.nranks))

    def validate_partition(self) -> None:
        """Every linear position owned exactly once."""
        marks = np.zeros(self.total, dtype=np.int32)
        for r in range(self.nranks):
            for run in self.runs(r):
                if not (0 <= run.lo <= run.hi <= self.total):
                    raise DistributionError(
                        f"run [{run.lo},{run.hi}) out of range for rank {r}")
                marks[run.lo:run.hi] += 1
        if self.total and not np.all(marks == 1):
            bad = int(np.flatnonzero(marks != 1)[0])
            raise DistributionError(
                f"linear position {bad} owned {int(marks[bad])} times")


class DenseLinearization(Linearization):
    """Row-major linearization of a DAD-described dense array.

    The linear position of global element ``(i0, .., ik)`` is its
    row-major offset in the global shape.  Each owned rectangular patch
    decomposes into one run per contiguous row segment.
    """

    def __init__(self, descriptor: DistArrayDescriptor):
        self.descriptor = descriptor
        self.nranks = descriptor.nranks
        self._strides = row_major_strides(descriptor.shape)
        self._runs_cache: dict[int, list[Run]] = {}
        #: rank -> (glo, ghi, lbase) int64 arrays: the rank's owned
        #: global-linear intervals (ascending) and the flat-local
        #: position of each interval's first element.
        self._table_cache: dict[int, tuple[np.ndarray, np.ndarray,
                                           np.ndarray]] = {}

    @property
    def total(self) -> int:
        n = 1
        for s in self.descriptor.shape:
            n *= s
        return n

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.descriptor.dtype)

    def _region_runs(self, region: Region) -> list[Run]:
        """Contiguous row-major runs covering ``region`` (vectorized)."""
        shape = self.descriptor.shape
        ndim = len(shape)
        # The trailing axes that are full-width in both region and array
        # stay contiguous; find the largest contiguous tail.
        tail = ndim
        run_len = 1
        for d in range(ndim - 1, -1, -1):
            run_len *= region.hi[d] - region.lo[d]
            tail = d
            if region.hi[d] - region.lo[d] != shape[d]:
                break
        # Leading coordinates enumerate run starts.
        lead_axes = [np.arange(region.lo[d], region.hi[d], dtype=np.int64)
                     for d in range(tail)]
        if not lead_axes:
            start = sum(l * s for l, s in zip(region.lo, self._strides))
            return [Run(int(start), int(start) + region.volume)]
        offset = np.zeros((), dtype=np.int64)
        for d in range(tail):
            offset = offset[..., None] + lead_axes[d] * self._strides[d]
        base = sum(region.lo[d] * self._strides[d] for d in range(tail, ndim))
        starts = (offset + base).reshape(-1)
        seg = region.volume // max(1, len(starts))
        return coalesce_runs([Run(int(s), int(s) + seg) for s in starts])

    def runs(self, rank: int) -> list[Run]:
        if rank not in self._runs_cache:
            runs: list[Run] = []
            for region in self.descriptor.local_regions(rank):
                runs.extend(self._region_runs(region))
            self._runs_cache[rank] = coalesce_runs(runs)
        return self._runs_cache[rank]

    # -- data movement ------------------------------------------------------

    def _local_table(self, rank: int) -> tuple[np.ndarray, np.ndarray,
                                               np.ndarray]:
        """(glo, ghi, lbase) interval table mapping the rank's owned
        global-linear positions to its flat-local storage.

        Built once per rank: patches enumerate in lo-sorted order (the
        :meth:`~repro.dad.darray.DistributedArray.flat_local` layout),
        and each patch's row-major enumeration visits global offsets in
        ascending order run by run, so local positions are the running
        element count.
        """
        table = self._table_cache.get(rank)
        if table is None:
            glo: list[int] = []
            ghi: list[int] = []
            lbase: list[int] = []
            off = 0
            for region in sorted(self.descriptor.local_regions(rank),
                                 key=lambda r: r.lo):
                for patch_run in self._region_runs(region):
                    glo.append(patch_run.lo)
                    ghi.append(patch_run.hi)
                    lbase.append(off)
                    off += patch_run.length
            order = np.argsort(np.asarray(glo, dtype=np.int64)) \
                if glo else np.empty(0, dtype=np.intp)
            table = (np.asarray(glo, dtype=np.int64)[order],
                     np.asarray(ghi, dtype=np.int64)[order],
                     np.asarray(lbase, dtype=np.int64)[order])
            self._table_cache[rank] = table
        return table

    def run_indices(self, rank: int, run: Run) -> np.ndarray:
        """Flat-local indices of ``run``, via binary search over the
        rank's interval table — O(log intervals + overlapping
        segments), not a walk over every patch."""
        glo, ghi, lbase = self._local_table(rank)
        parts: list[np.ndarray] = []
        pos = run.lo
        i = int(np.searchsorted(ghi, pos, side="right"))
        while pos < run.hi:
            if i >= glo.size or glo[i] > pos:
                raise ScheduleError(
                    f"rank {rank} does not own all of linear run "
                    f"[{run.lo},{run.hi})")
            stop = min(run.hi, int(ghi[i]))
            base = int(lbase[i]) - int(glo[i])
            parts.append(np.arange(base + pos, base + stop, dtype=np.int64))
            pos = stop
            i += 1
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts) if parts else \
            np.empty(0, dtype=np.int64)

    def flat_storage(self, rank: int,
                     storage: DistributedArray) -> np.ndarray:
        return storage.flat_local()

    def extract(self, rank: int, run: Run,
                storage: DistributedArray) -> np.ndarray:
        return storage.flat_local().take(self.run_indices(rank, run))

    def inject(self, rank: int, run: Run, values: np.ndarray,
               storage: DistributedArray) -> None:
        idx = self.run_indices(rank, run)
        values = np.asarray(values).reshape(-1)
        if values.size != idx.size:
            raise ScheduleError(
                f"rank {rank}: inject of run [{run.lo},{run.hi}) got "
                f"{values.size} values for {idx.size} positions")
        storage.flat_local()[idx] = values
