"""Linearization — the Meta-Chaos intermediate representation (§2.2.1).

"The elements of the source array are mapped to a linear,
one-dimensional arrangement, which constitutes the abstract intermediate
representation. ... Linearization simplifies the task of matching a
variety of data structures, from multidimensional arrays to trees or
graphs."

A :class:`Linearization` assigns every element of some distributed data
structure a position in ``[0, total)``.  Ownership becomes a set of
*runs* (half-open linear intervals) per rank; matching a source and a
destination structure reduces to intersecting run lists, regardless of
the structures' shapes.  The linearization is logical — "it does not
imply serialization - ... actual transfers can be carried out fully in
parallel".
"""

from repro.linearize.linearization import (
    DenseLinearization,
    Linearization,
    Run,
)
from repro.linearize.structures import GraphLinearization, TreeLinearization
from repro.linearize.protocol import receiver_driven_transfer

__all__ = [
    "Linearization",
    "DenseLinearization",
    "GraphLinearization",
    "TreeLinearization",
    "Run",
    "receiver_driven_transfer",
]
