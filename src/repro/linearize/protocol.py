"""Receiver-driven transfer — the Indiana MPI-IO M×N device protocol.

Paper §2.2.1/§2.3: "each process on the receiver side broadcasts to the
senders which chunks of data it requires, referencing them to the
linearization.  At the expense of this small communication overhead, no
communication schedule is required."

Both sides must agree on a linearization of the shared data (the
abstract intermediate representation); nothing else about the peer's
decomposition needs to be known — no descriptor exchange, no schedule
build.  Experiment E16 measures the request-message overhead this trades
for.
"""

from __future__ import annotations

from typing import Any


from repro.errors import ScheduleError
from repro.linearize.linearization import Linearization, Run
from repro.simmpi.intercomm import Intercommunicator

#: Tag used for run-request messages.
REQUEST_TAG = 71
#: Tag used for data replies.
REPLY_TAG = 72


def receiver_driven_transfer(inter: Intercommunicator, side: str,
                             lin: Linearization, storage: Any) -> int:
    """One transfer using the receiver-driven protocol.

    Parameters
    ----------
    inter:
        Intercommunicator between the sending and receiving programs.
    side:
        ``"send"`` or ``"recv"`` — which role this program plays.
    lin:
        This side's linearization of the shared data structure.  The two
        sides' linearizations must cover the same linear space.
    storage:
        This rank's local storage in the form ``lin`` understands.

    Returns
    -------
    The number of data elements this rank moved (sent or received).
    """
    rank = inter.rank
    if side == "recv":
        my_runs = lin.runs(rank)
        request = [(r.lo, r.hi) for r in my_runs]
        # "Broadcast" the needed chunks to every sender.
        for sender in range(inter.remote_size):
            inter.send(request, dest=sender, tag=REQUEST_TAG)
        # Collect one reply per sender; a reply is a list of
        # (lo, hi, values) fragments covering owned intersections.
        moved = 0
        covered = 0
        for _ in range(inter.remote_size):
            fragments, status = inter.recv(tag=REPLY_TAG, return_status=True)
            for lo, hi, values in fragments:
                lin.inject(rank, Run(lo, hi), values, storage)
                moved += hi - lo
                covered += hi - lo
        needed = sum(r.length for r in my_runs)
        if covered != needed:
            raise ScheduleError(
                f"receiver rank {rank} got {covered} of {needed} elements")
        return moved

    if side == "send":
        owned = lin.runs(rank)
        moved = 0
        # Service exactly one request from EACH receiver.  Receiving
        # per-source (not ANY_SOURCE) keeps repeated transfers aligned:
        # a fast receiver's next-round request must not be answered out
        # of this round's data.
        for receiver in range(inter.remote_size):
            request = inter.recv(source=receiver, tag=REQUEST_TAG)
            fragments = []
            for lo, hi in request:
                needed = Run(int(lo), int(hi))
                for mine in owned:
                    inter_run = mine.intersect(needed)
                    if inter_run is None:
                        continue
                    values = lin.extract(rank, inter_run, storage)
                    fragments.append((inter_run.lo, inter_run.hi, values))
                    moved += inter_run.length
            inter.send(fragments, dest=receiver, tag=REPLY_TAG)
        return moved

    raise ValueError(f"side must be 'send' or 'recv', got {side!r}")
