"""Linearizations of non-array structures: graphs and trees.

The paper singles this out as linearization's key advantage:
"Linearization simplifies the task of matching a variety of data
structures, from multidimensional arrays to trees or graphs."  These
classes let a field stored on graph nodes couple to anything else that
shares the linear space — including a dense array on a different
process count (see ``examples`` and the integration tests).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.errors import DistributionError, ScheduleError
from repro.linearize.linearization import Linearization, Run, coalesce_runs


class GraphLinearization(Linearization):
    """Linearization of per-node values of a distributed graph.

    Parameters
    ----------
    graph:
        The (undirected or directed) networkx graph.
    owners:
        Mapping node -> owning rank.
    order:
        Node ordering defining linear positions.  Defaults to a BFS
        order from the lexicographically smallest node, which keeps
        neighbourhoods nearby in the linear space (locality matters for
        run coalescing).
    """

    def __init__(self, graph: nx.Graph, owners: Mapping[Hashable, int],
                 order: Sequence[Hashable] | None = None):
        self.graph = graph
        if set(owners) != set(graph.nodes):
            raise DistributionError(
                "owner map must cover exactly the graph's nodes")
        self.owners = dict(owners)
        self.nranks = max(self.owners.values()) + 1 if self.owners else 1
        if order is None:
            order = bfs_order(graph)
        order = list(order)
        if set(order) != set(graph.nodes) or len(order) != len(graph.nodes):
            raise DistributionError(
                "order must be a permutation of the graph's nodes")
        self.order = order
        self.position = {node: i for i, node in enumerate(order)}
        self._runs_cache: dict[int, list[Run]] = {}

    @property
    def total(self) -> int:
        return len(self.order)

    def runs(self, rank: int) -> list[Run]:
        if rank not in self._runs_cache:
            positions = sorted(
                self.position[n] for n, r in self.owners.items() if r == rank)
            self._runs_cache[rank] = coalesce_runs(
                [Run(p, p + 1) for p in positions])
        return self._runs_cache[rank]

    # Storage for a graph field is a plain dict node -> float value,
    # holding only the rank's owned nodes.

    def make_storage(self, rank: int,
                     values: Mapping[Hashable, float] | None = None) -> dict:
        store = {n: 0.0 for n, r in self.owners.items() if r == rank}
        if values is not None:
            for n in store:
                store[n] = values[n]
        return store

    def extract(self, rank: int, run: Run, storage: Mapping) -> np.ndarray:
        out = np.empty(run.length, dtype=np.float64)
        for i, pos in enumerate(range(run.lo, run.hi)):
            node = self.order[pos]
            if node not in storage:
                raise ScheduleError(
                    f"rank {rank} asked to extract unowned node {node!r}")
            out[i] = storage[node]
        return out

    def inject(self, rank: int, run: Run, values: np.ndarray,
               storage: dict) -> None:
        for i, pos in enumerate(range(run.lo, run.hi)):
            node = self.order[pos]
            if node not in storage:
                raise ScheduleError(
                    f"rank {rank} asked to inject unowned node {node!r}")
            storage[node] = float(values[i])


class TreeLinearization(GraphLinearization):
    """DFS-preorder linearization of a rooted tree.

    Preorder keeps every subtree contiguous in the linear space, so
    subtree ownership produces single runs — the compact case.
    """

    def __init__(self, tree: nx.Graph, root: Hashable,
                 owners: Mapping[Hashable, int]):
        if not nx.is_tree(tree):
            raise DistributionError("TreeLinearization requires a tree")
        order = list(nx.dfs_preorder_nodes(tree, root))
        super().__init__(tree, owners, order)
        self.root = root
        # Rooted orientation: lets subtree queries exclude the parent side.
        self._rooted = nx.bfs_tree(tree, root)

    def subtree_run(self, node: Hashable) -> Run:
        """The linear interval covering ``node``'s entire subtree."""
        sub = [node] + list(nx.descendants(self._rooted, node))
        positions = [self.position[n] for n in sub]
        lo, hi = min(positions), max(positions) + 1
        if hi - lo != len(sub):  # pragma: no cover - preorder guarantees this
            raise ScheduleError("subtree not contiguous in preorder")
        return Run(lo, hi)


def bfs_order(graph: nx.Graph) -> list:
    """Deterministic BFS ordering covering all components."""
    order: list = []
    seen: set = set()
    for start in sorted(graph.nodes, key=repr):
        if start in seen:
            continue
        order.append(start)
        seen.add(start)
        for _, node in nx.bfs_edges(graph, start):
            if node not in seen:
                order.append(node)
                seen.add(node)
    return order
