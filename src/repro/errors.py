"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so
applications can catch middleware failures distinctly from programming
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CommunicatorError(ReproError):
    """Invalid communicator usage (bad rank, freed communicator, ...)."""


class MessageTruncationError(CommunicatorError):
    """A receive buffer was too small for the matched message."""


class DeadlockError(ReproError):
    """The runtime watchdog determined that a set of ranks can no longer
    make progress.

    Carries a human-readable state dump of every blocked rank so test
    suites fail with diagnostics instead of hanging.
    """

    def __init__(self, message: str, blocked: dict | None = None):
        super().__init__(message)
        #: Mapping of rank -> description of what the rank is blocked on.
        #: Keys are plain ranks for single jobs, ``"{job} rank {r}"``
        #: strings for coupled launches.
        self.blocked = dict(blocked or {})

    def __reduce__(self):
        # keep `blocked` across pickling (procs backend ships rank
        # exceptions back to the supervisor process)
        return (type(self), (self.args[0], self.blocked))


class SpmdError(ReproError):
    """One or more ranks of an SPMD job raised an exception.

    The original per-rank exceptions are available in :attr:`failures`,
    keyed by rank for :func:`~repro.simmpi.run_spmd` and by
    ``"{job} rank {r}"`` strings for :func:`~repro.simmpi.run_coupled`.
    """

    def __init__(self, failures: dict):
        self.failures = dict(failures)
        lines = [f"{len(failures)} rank(s) failed:"]
        for rank in sorted(failures, key=str):
            exc = failures[rank]
            who = rank if isinstance(rank, str) else f"rank {rank}"
            lines.append(f"  {who}: {type(exc).__name__}: {exc}")
        super().__init__("\n".join(lines))

    def __reduce__(self):
        return (type(self), (self.failures,))


class DistributionError(ReproError):
    """An invalid data distribution (overlap, gap, bad block size, ...)."""


class AlignmentError(DistributionError):
    """An actual array cannot be aligned to the requested template."""


class ScheduleError(ReproError):
    """A communication schedule could not be built or executed."""


class VerificationError(ReproError):
    """A static-analysis check (:mod:`repro.verify`) failed.

    Carries the individual check failures in :attr:`failures` so CLI
    and CI output can list every violated property, not just the first.
    """

    def __init__(self, message: str, failures: list[str] | None = None):
        self.failures = list(failures or [])
        if self.failures:
            message = message + "\n" + "\n".join(
                f"  - {f}" for f in self.failures)
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0].split("\n")[0], self.failures))


class RegistrationError(ReproError):
    """Invalid M×N field registration (duplicate name, bad mode, ...)."""


class ConnectionError_(ReproError):
    """An M×N connection could not be created or used.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class PortError(ReproError):
    """CCA port misuse: unknown port, type mismatch, unconnected uses port."""


class PRMIError(ReproError):
    """Violation of parallel remote method invocation semantics."""


class ParticipationError(PRMIError):
    """Inconsistent process participation in a collective invocation."""


class SimpleArgumentMismatch(PRMIError):
    """A ``simple`` argument had different values across calling ranks."""


class OneWayReturnError(PRMIError):
    """A one-way method declared a return value or out argument."""


class ServerOverloaded(PRMIError):
    """Admission control refused an invocation: the bounded in-flight
    queue (caller-side credit or the serve loop's ingress queue) was
    full and the overflow policy is ``"raise"`` rather than block."""


class CoordinationError(ReproError):
    """InterComm-style coordination spec mismatch or matching failure."""


class MCTError(ReproError):
    """Model Coupling Toolkit usage error."""


class WindowError(ReproError):
    """Roccom-style window misuse: unknown window/pane/function."""


class PermissionError_(WindowError):
    """Access to a window denied by its owner module.

    Named with a trailing underscore to avoid shadowing the builtin.
    """
